/**
 * @file
 * Ostrich-suite kernels hand-ported to WAT (paper Section 5.1). The
 * Ostrich benchmarks are numerical-computing kernels for the web; the
 * eight used in Figure 6 are reproduced here with the same algorithmic
 * skeletons (transcendental functions are replaced with rational
 * approximations — Wasm has no sin/cos/exp — which preserves the
 * instruction mix; DESIGN.md substitution S4).
 */

#include "suites/suites.h"

#include "suites/watbuild.h"

namespace wizpp {

namespace {

using namespace watbuild;

BenchProgram
make(const std::string& name, const std::string& body, uint32_t defaultN)
{
    BenchProgram p;
    p.suite = "ostrich";
    p.name = name;
    p.wat = "(module (memory 8)\n" + std::string(kSuitePrelude) + body +
            runDriver() + ")";
    p.defaultN = defaultN;
    return p;
}

std::string I = get("$i"), J = get("$j"), K = get("$k"), T = get("$t");

// nqueens: recursive backtracking solution counter (call-heavy).
std::string
nqueens()
{
    return R"WAT(
  (func $init)
  (func $solve (param $cols i32) (param $diag1 i32) (param $diag2 i32)
               (param $row i32) (param $size i32) (result i32)
    (local $free i32) (local $bit i32) (local $count i32)
    (if (i32.eq (local.get $row) (local.get $size))
      (then (return (i32.const 1))))
    (local.set $free
      (i32.and
        (i32.xor (i32.const -1)
          (i32.or (i32.or (local.get $cols) (local.get $diag1))
                  (local.get $diag2)))
        (i32.sub (i32.shl (i32.const 1) (local.get $size)) (i32.const 1))))
    (block $done
      (loop $try
        (br_if $done (i32.eqz (local.get $free)))
        (local.set $bit
          (i32.and (local.get $free)
                   (i32.sub (i32.const 0) (local.get $free))))
        (local.set $free (i32.xor (local.get $free) (local.get $bit)))
        (local.set $count (i32.add (local.get $count)
          (call $solve
            (i32.or (local.get $cols) (local.get $bit))
            (i32.and
              (i32.shl (i32.or (local.get $diag1) (local.get $bit))
                       (i32.const 1))
              (i32.const 0x3fffffff))
            (i32.shr_u (i32.or (local.get $diag2) (local.get $bit))
                       (i32.const 1))
            (i32.add (local.get $row) (i32.const 1))
            (local.get $size))))
        (br $try)))
    (local.get $count))
  (func $kernel (result f64)
    (f64.convert_i32_s
      (call $solve (i32.const 0) (i32.const 0) (i32.const 0)
                   (i32.const 0) (i32.const 8))))
)WAT";
}

// crc: bitwise CRC-32 over an 8 KiB buffer (no lookup table).
std::string
crc()
{
    return R"WAT(
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (i32.store8 (local.get $i)
        (i32.mul (i32.add (local.get $i) (i32.const 37)) (i32.const 41)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l))))
  (func $kernel (result f64)
    (local $i i32) (local $b i32) (local $crc i32)
    (local.set $crc (i32.const -1))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (local.set $crc
        (i32.xor (local.get $crc) (i32.load8_u (local.get $i))))
      (local.set $b (i32.const 0))
      (block $x8 (loop $l8
        (br_if $x8 (i32.ge_s (local.get $b) (i32.const 8)))
        (local.set $crc
          (i32.xor (i32.shr_u (local.get $crc) (i32.const 1))
            (i32.and (i32.const 0xedb88320)
              (i32.sub (i32.const 0)
                       (i32.and (local.get $crc) (i32.const 1))))))
        (local.set $b (i32.add (local.get $b) (i32.const 1)))
        (br $l8)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (f64.convert_i32_u (i32.xor (local.get $crc) (i32.const -1))))
)WAT";
}

// nw: Needleman-Wunsch DP over a 96x96 score grid (i32, select-max).
std::string
nw()
{
    constexpr int N = 96;
    std::string score =
        "(i32.sub (i32.const 2) (i32.mul (i32.const 3)"
        " (i32.and (i32.add (local.get $i) (local.get $j)) (i32.const 1))))";
    auto cell = [&](const std::string& i, const std::string& j) {
        return "(i32.add (i32.const 0)"
               " (i32.mul (i32.add (i32.mul " + i + " " + c32(N) + ") " +
               j + ") (i32.const 4)))";
    };
    std::string im1 = "(i32.sub (local.get $i) (i32.const 1))";
    std::string jm1 = "(i32.sub (local.get $j) (i32.const 1))";
    return
        "(func $init"
        " (local $i i32) (local $j i32)" +
        forUp("$i", c32(N),
              "(i32.store " + cell(I, "(i32.const 0)") +
              " (i32.mul (local.get $i) (i32.const -1)))"
              "(i32.store " + cell("(i32.const 0)", I) +
              " (i32.mul (local.get $i) (i32.const -1)))") + ")"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $d i32) (local $u i32)"
        " (local $v i32) (local $m i32)" +
        forFrom("$i", "(i32.const 1)", c32(N),
            forFrom("$j", "(i32.const 1)", c32(N),
                "(local.set $d (i32.add (i32.load " + cell(im1, jm1) +
                ") " + score + "))"
                "(local.set $u (i32.sub (i32.load " + cell(im1, J) +
                ") (i32.const 1)))"
                "(local.set $v (i32.sub (i32.load " + cell(I, jm1) +
                ") (i32.const 1)))"
                "(local.set $m (select (local.get $d) (local.get $u)"
                " (i32.gt_s (local.get $d) (local.get $u))))"
                "(local.set $m (select (local.get $m) (local.get $v)"
                " (i32.gt_s (local.get $m) (local.get $v))))"
                "(i32.store " + cell(I, J) + " (local.get $m))")) +
        "(f64.convert_i32_s (i32.load " +
        cell(c32(N - 1), c32(N - 1)) + ")))";
}

// lud: in-place LU decomposition, N=32 (Ostrich flavor of dense LA).
std::string
lud()
{
    constexpr int N = 32;
    return
        "(func $init"
        " (local $i i32)"
        " (call $fill (i32.const 0) " + c32(N * N) + " (i32.const 3))" +
        forUp("$i", c32(N),
              st(at2(0, I, I, N),
                 "(f64.add " + ld(at2(0, I, I, N)) + " (f64.const 48))")) +
        ")"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$k", c32(N),
              forFrom("$j", K, c32(N),
                      "(local.set $acc " + ld(at2(0, K, J, N)) + ")" +
                      forFrom("$i", "(i32.const 0)", K,
                              "(local.set $acc (f64.sub (local.get $acc)"
                              " (f64.mul " + ld(at2(0, K, I, N)) + " " +
                              ld(at2(0, I, J, N)) + ")))") +
                      st(at2(0, K, J, N), "(local.get $acc)")) +
              forFrom("$i", "(i32.add (local.get $k) (i32.const 1))",
                      c32(N),
                      "(local.set $acc " + ld(at2(0, I, K, N)) + ")" +
                      forFrom("$j", "(i32.const 0)", K,
                              "(local.set $acc (f64.sub (local.get $acc)"
                              " (f64.mul " + ld(at2(0, I, J, N)) + " " +
                              ld(at2(0, J, K, N)) + ")))") +
                      st(at2(0, I, K, N),
                         "(f64.div (local.get $acc) " +
                         ld(at2(0, K, K, N)) + ")"))) +
        "(call $fsum (i32.const 0) " + c32(N * N) + "))";
}

// hmm: Viterbi-style dynamic programming, 8 states x 256 steps.
std::string
hmm()
{
    constexpr int S = 8, TS = 256;
    // trans at 0 (S*S f64), delta at V=16384, next at V2=20480
    constexpr long long TR = 0, DL = 16384, NX = 20480;
    return
        "(func $init (call $fill " + c32(TR) + " " + c32(S * S) +
        " (i32.const 5)) (call $fill " + c32(DL) + " " + c32(S) +
        " (i32.const 6)))"
        "(func $kernel (result f64)"
        " (local $t i32) (local $s i32) (local $p i32)"
        " (local $best f64) (local $cand f64)" +
        forUp("$t", c32(TS),
              forUp("$s", c32(S),
                    "(local.set $best (f64.const -1e300))" +
                    forUp("$p", c32(S),
                          "(local.set $cand (f64.add (f64.load " +
                          at1(DL, get("$p")) + ") " +
                          ld(at2(TR, get("$p"), get("$s"), S)) + "))"
                          "(if (f64.gt (local.get $cand) (local.get $best))"
                          " (then (local.set $best (local.get $cand))))") +
                    st(at1(NX, get("$s")),
                       "(f64.add (local.get $best) (f64.const -0.01))")) +
              forUp("$s", c32(S),
                    st(at1(DL, get("$s")), ld(at1(NX, get("$s")))))) +
        "(call $fsum " + c32(DL) + " " + c32(S) + "))";
}

// back-propagation: 2-layer network, rational sigmoid.
std::string
backprop()
{
    constexpr int IN = 16, HID = 64;
    // w1 at 0 (IN*HID), in at V=32768, hid at 36864, w2 at 40960,
    // deltas at 45056
    constexpr long long W1 = 0, INV = 32768, HIDV = 36864, W2 = 40960,
                        DH = 45056;
    std::string sigmoid =
        "(f64.div (local.get $acc)"
        " (f64.add (f64.const 1) (f64.abs (local.get $acc))))";
    std::string forward =
        forUp("$j", c32(HID),
              "(local.set $acc (f64.const 0))" +
              forUp("$i", c32(IN),
                    "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                    ld(at2(W1, I, J, HID)) + " " + ld(at1(INV, I)) +
                    ")))") +
              st(at1(HIDV, J), sigmoid)) +
        "(local.set $acc (f64.const 0))" +
        forUp("$j", c32(HID),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at1(W2, J)) + " " + ld(at1(HIDV, J)) + ")))") +
        "(local.set $outv " + sigmoid + ")";
    std::string backward =
        "(local.set $err (f64.sub (f64.const 0.5) (local.get $outv)))" +
        forUp("$j", c32(HID),
              st(at1(DH, J),
                 "(f64.mul (local.get $err) " + ld(at1(W2, J)) + ")") +
              st(at1(W2, J),
                 "(f64.add " + ld(at1(W2, J)) +
                 " (f64.mul (f64.const 0.3) (f64.mul (local.get $err) " +
                 ld(at1(HIDV, J)) + ")))")) +
        forUp("$j", c32(HID),
              forUp("$i", c32(IN),
                    st(at2(W1, I, J, HID),
                       "(f64.add " + ld(at2(W1, I, J, HID)) +
                       " (f64.mul (f64.const 0.3) (f64.mul (f64.load " +
                       at1(DH, J) + ") " + ld(at1(INV, I)) + ")))")));
    return
        "(func $init (call $fill " + c32(W1) + " " + c32(IN * HID) +
        " (i32.const 1)) (call $fill " + c32(INV) + " " + c32(IN) +
        " (i32.const 2)) (call $fill " + c32(W2) + " " + c32(HID) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $e i32)"
        " (local $acc f64) (local $outv f64) (local $err f64)" +
        forUp("$e", "(i32.const 8)", forward + backward) +
        "(call $fsum " + c32(W2) + " " + c32(HID) + "))";
}

// lavamd: particle-pair interactions with rational kernel, n=96.
std::string
lavamd()
{
    constexpr int NP = 96;
    // pos (x,y,z interleaved) at 0; force accumulators at 16384
    constexpr long long POS = 0, FRC = 16384;
    auto coord = [&](const std::string& i, int c) {
        return "(i32.add " + c32(POS + c * 8) +
               " (i32.mul " + i + " (i32.const 24)))";
    };
    auto fcoord = [&](const std::string& i, int c) {
        return "(i32.add " + c32(FRC + c * 8) +
               " (i32.mul " + i + " (i32.const 24)))";
    };
    std::string pair =
        "(local.set $dx (f64.sub " + ld(coord(I, 0)) + " " +
        ld(coord(J, 0)) + "))"
        "(local.set $dy (f64.sub " + ld(coord(I, 1)) + " " +
        ld(coord(J, 1)) + "))"
        "(local.set $dz (f64.sub " + ld(coord(I, 2)) + " " +
        ld(coord(J, 2)) + "))"
        "(local.set $r2 (f64.add (f64.add"
        " (f64.mul (local.get $dx) (local.get $dx))"
        " (f64.mul (local.get $dy) (local.get $dy)))"
        " (f64.mul (local.get $dz) (local.get $dz))))"
        "(local.set $w (f64.div (f64.const 1)"
        " (f64.add (f64.const 1) (local.get $r2))))" +
        st(fcoord(I, 0), "(f64.add " + ld(fcoord(I, 0)) +
           " (f64.mul (local.get $w) (local.get $dx)))") +
        st(fcoord(I, 1), "(f64.add " + ld(fcoord(I, 1)) +
           " (f64.mul (local.get $w) (local.get $dy)))") +
        st(fcoord(I, 2), "(f64.add " + ld(fcoord(I, 2)) +
           " (f64.mul (local.get $w) (local.get $dz)))");
    return
        "(func $init (call $fill " + c32(POS) + " " + c32(NP * 3) +
        " (i32.const 7)) (call $fill " + c32(FRC) + " " + c32(NP * 3) +
        " (i32.const 0)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $dx f64) (local $dy f64)"
        " (local $dz f64) (local $r2 f64) (local $w f64)" +
        forUp("$i", c32(NP), forUp("$j", c32(NP), pair)) +
        "(call $fsum " + c32(FRC) + " " + c32(NP * 3) + "))";
}

// fft: iterative radix-2 butterflies over 256 complex points
// (pseudo-twiddles: rational values in place of sin/cos).
std::string
fft()
{
    return R"WAT(
  (func $init
    (call $fill (i32.const 0) (i32.const 256) (i32.const 11))
    (call $fill (i32.const 2048) (i32.const 256) (i32.const 12)))
  (func $kernel (result f64)
    (local $len i32) (local $i i32) (local $j i32) (local $half i32)
    (local $wr f64) (local $wi f64) (local $ur f64) (local $ui f64)
    (local $vr f64) (local $vi f64) (local $tr f64) (local $ti f64)
    (local $pa i32) (local $pb i32)
    (local.set $len (i32.const 2))
    (block $xlen (loop $llen
      (br_if $xlen (i32.gt_s (local.get $len) (i32.const 256)))
      (local.set $half (i32.div_s (local.get $len) (i32.const 2)))
      (local.set $i (i32.const 0))
      (block $xi (loop $li
        (br_if $xi (i32.ge_s (local.get $i) (i32.const 256)))
        (local.set $j (i32.const 0))
        (block $xj (loop $lj
          (br_if $xj (i32.ge_s (local.get $j) (local.get $half)))
          ;; pseudo-twiddle: wr = 1 - 2j/len, wi = 2j/len (rational)
          (local.set $wr (f64.sub (f64.const 1)
            (f64.div
              (f64.mul (f64.const 2) (f64.convert_i32_s (local.get $j)))
              (f64.convert_i32_s (local.get $len)))))
          (local.set $wi (f64.div
            (f64.mul (f64.const 2) (f64.convert_i32_s (local.get $j)))
            (f64.convert_i32_s (local.get $len))))
          (local.set $pa (i32.add (local.get $i) (local.get $j)))
          (local.set $pb (i32.add (local.get $pa) (local.get $half)))
          (local.set $ur (f64.load
            (i32.add (i32.const 0)
                     (i32.mul (local.get $pa) (i32.const 8)))))
          (local.set $ui (f64.load
            (i32.add (i32.const 2048)
                     (i32.mul (local.get $pa) (i32.const 8)))))
          (local.set $vr (f64.load
            (i32.add (i32.const 0)
                     (i32.mul (local.get $pb) (i32.const 8)))))
          (local.set $vi (f64.load
            (i32.add (i32.const 2048)
                     (i32.mul (local.get $pb) (i32.const 8)))))
          (local.set $tr (f64.sub (f64.mul (local.get $vr) (local.get $wr))
                                  (f64.mul (local.get $vi) (local.get $wi))))
          (local.set $ti (f64.add (f64.mul (local.get $vr) (local.get $wi))
                                  (f64.mul (local.get $vi) (local.get $wr))))
          (f64.store
            (i32.add (i32.const 0) (i32.mul (local.get $pa) (i32.const 8)))
            (f64.add (local.get $ur) (local.get $tr)))
          (f64.store
            (i32.add (i32.const 2048)
                     (i32.mul (local.get $pa) (i32.const 8)))
            (f64.add (local.get $ui) (local.get $ti)))
          (f64.store
            (i32.add (i32.const 0) (i32.mul (local.get $pb) (i32.const 8)))
            (f64.sub (local.get $ur) (local.get $tr)))
          (f64.store
            (i32.add (i32.const 2048)
                     (i32.mul (local.get $pb) (i32.const 8)))
            (f64.sub (local.get $ui) (local.get $ti)))
          (local.set $j (i32.add (local.get $j) (i32.const 1)))
          (br $lj)))
        (local.set $i (i32.add (local.get $i) (local.get $len)))
        (br $li)))
      (local.set $len (i32.mul (local.get $len) (i32.const 2)))
      (br $llen)))
    (f64.add (call $fsum (i32.const 0) (i32.const 256))
             (call $fsum (i32.const 2048) (i32.const 256))))
)WAT";
}

} // namespace

void
registerOstrich(std::vector<BenchProgram>* out)
{
    out->push_back(make("lavamd", lavamd(), 8));
    out->push_back(make("fft", fft(), 16));
    out->push_back(make("crc", crc(), 16));
    out->push_back(make("nw", nw(), 16));
    out->push_back(make("lud", lud(), 8));
    out->push_back(make("nqueens", nqueens(), 4));
    out->push_back(make("hmm", hmm(), 16));
    out->push_back(make("back-propagation", backprop(), 8));
}

} // namespace wizpp
