/**
 * @file
 * PolyBench/C kernels hand-ported to WAT (paper Section 5.1, all 29
 * programs of Figures 3-7). Loop structure and memory-access patterns
 * follow the original kernels; problem sizes are scaled so one kernel
 * invocation runs in milliseconds on the compiled tier (DESIGN.md
 * substitution S4). Every module exports run(n) -> f64 checksum.
 */

#include "suites/suites.h"

#include "suites/watbuild.h"

namespace wizpp {

namespace {

using namespace watbuild;

// Memory layout: 8 pages (512 KiB). 2-D bases 64 KiB apart; vector
// bases above 256 KiB.
constexpr long long A0 = 0;
constexpr long long B0 = 0x10000;
constexpr long long C0 = 0x20000;
constexpr long long D0 = 0x30000;
constexpr long long V0 = 0x40000;  // vectors, spaced 0x4000 (2048 f64)
constexpr long long V1 = 0x44000;
constexpr long long V2 = 0x48000;
constexpr long long V3 = 0x4c000;
constexpr long long V4 = 0x50000;
constexpr long long V5 = 0x54000;

BenchProgram
make(const std::string& name, const std::string& body, uint32_t defaultN)
{
    BenchProgram p;
    p.suite = "polybench";
    p.name = name;
    p.wat = "(module (memory 8)\n" + std::string(kSuitePrelude) + body +
            runDriver() + ")";
    p.defaultN = defaultN;
    return p;
}

std::string
fsum(long long base, int count)
{
    return "(call $fsum " + c32(base) + " " + c32(count) + ")";
}

std::string I = get("$i"), J = get("$j"), K = get("$k"), T = get("$t");

// ---- dense linear algebra, O(N^3), N = 24 ----

constexpr int N3 = 24;

std::string
gemm()
{
    // C = 1.5*A*B + 1.2*C
    std::string inner =
        "(local.set $acc (f64.const 0))" +
        forUp("$k", c32(N3),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, K, N3)) + " " + ld(at2(B0, K, J, N3)) + ")))") +
        st(at2(C0, I, J, N3),
           "(f64.add (f64.mul (f64.const 1.2) " + ld(at2(C0, I, J, N3)) +
           ") (f64.mul (f64.const 1.5) (local.get $acc)))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3), forUp("$j", c32(N3), inner)) +
        fsum(C0, N3 * N3) + ")";
}

std::string
mm2()
{
    // tmp = A*B ; D = tmp*C
    std::string p1 =
        "(local.set $acc (f64.const 0))" +
        forUp("$k", c32(N3),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, K, N3)) + " " + ld(at2(B0, K, J, N3)) + ")))") +
        st(at2(D0, I, J, N3), "(local.get $acc)");
    std::string p2 =
        "(local.set $acc (f64.const 0))" +
        forUp("$k", c32(N3),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(D0, I, K, N3)) + " " + ld(at2(C0, K, J, N3)) + ")))") +
        st(at2(A0, I, J, N3), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3), forUp("$j", c32(N3), p1)) +
        forUp("$i", c32(N3), forUp("$j", c32(N3), p2)) +
        fsum(A0, N3 * N3) + ")";
}

std::string
mm3()
{
    // E=A*B ; F=C*D? — uses 4 matrices: E at D0, F reuses A0 after.
    std::string mul = [](long long dst, long long a, long long b) {
        return "(local.set $acc (f64.const 0))" +
               forUp("$k", c32(N3),
                     "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                     ld(at2(a, get("$i"), get("$k"), N3)) + " " +
                     ld(at2(b, get("$k"), get("$j"), N3)) + ")))") +
               st(at2(dst, get("$i"), get("$j"), N3), "(local.get $acc)");
    }(D0, A0, B0);
    std::string mul2 = [](long long dst, long long a, long long b) {
        return "(local.set $acc (f64.const 0))" +
               forUp("$k", c32(N3),
                     "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                     ld(at2(a, get("$i"), get("$k"), N3)) + " " +
                     ld(at2(b, get("$k"), get("$j"), N3)) + ")))") +
               st(at2(dst, get("$i"), get("$j"), N3), "(local.get $acc)");
    }(A0, D0, C0);
    std::string mul3 = [](long long dst, long long a, long long b) {
        return "(local.set $acc (f64.const 0))" +
               forUp("$k", c32(N3),
                     "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                     ld(at2(a, get("$i"), get("$k"), N3)) + " " +
                     ld(at2(b, get("$k"), get("$j"), N3)) + ")))") +
               st(at2(dst, get("$i"), get("$j"), N3), "(local.get $acc)");
    }(B0, A0, D0);
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 3)) (call $fill " + c32(D0) + " " + c32(N3 * N3) +
        " (i32.const 4)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3), forUp("$j", c32(N3), mul)) +
        forUp("$i", c32(N3), forUp("$j", c32(N3), mul2)) +
        forUp("$i", c32(N3), forUp("$j", c32(N3), mul3)) +
        fsum(B0, N3 * N3) + ")";
}

std::string
syrk()
{
    // C = 1.5*A*A^T + 1.2*C, lower triangle
    std::string inner =
        "(local.set $acc (f64.mul (f64.const 1.2) " +
        ld(at2(C0, I, J, N3)) + "))" +
        forUp("$k", c32(N3),
              "(local.set $acc (f64.add (local.get $acc)"
              " (f64.mul (f64.const 1.5) (f64.mul " +
              ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, J, K, N3)) +
              "))))") +
        st(at2(C0, I, J, N3), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3),
              forFrom("$j", "(i32.const 0)",
                      "(i32.add (local.get $i) (i32.const 1))", inner)) +
        fsum(C0, N3 * N3) + ")";
}

std::string
syr2k()
{
    std::string inner =
        "(local.set $acc (f64.mul (f64.const 1.2) " +
        ld(at2(C0, I, J, N3)) + "))" +
        forUp("$k", c32(N3),
              "(local.set $acc (f64.add (local.get $acc)"
              " (f64.add"
              " (f64.mul " + ld(at2(A0, I, K, N3)) + " " +
              ld(at2(B0, J, K, N3)) + ")"
              " (f64.mul " + ld(at2(B0, I, K, N3)) + " " +
              ld(at2(A0, J, K, N3)) + "))))") +
        st(at2(C0, I, J, N3), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3),
              forFrom("$j", "(i32.const 0)",
                      "(i32.add (local.get $i) (i32.const 1))", inner)) +
        fsum(C0, N3 * N3) + ")";
}

std::string
symm()
{
    // C = alpha*A*B + beta*C with symmetric A (simplified accumulation)
    std::string inner =
        "(local.set $acc (f64.const 0))" +
        forFrom("$k", "(i32.const 0)", I,
                "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                ld(at2(A0, I, K, N3)) + " " + ld(at2(B0, K, J, N3)) +
                ")))") +
        st(at2(C0, I, J, N3),
           "(f64.add (f64.mul (f64.const 1.2) " + ld(at2(C0, I, J, N3)) +
           ") (f64.add (f64.mul (f64.const 1.5) (local.get $acc))"
           " (f64.mul " + ld(at2(A0, I, I, N3)) + " " +
           ld(at2(B0, I, J, N3)) + ")))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N3 * N3) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3), forUp("$j", c32(N3), inner)) +
        fsum(C0, N3 * N3) + ")";
}

std::string
trmm()
{
    // B = 1.5 * A * B with A unit lower triangular
    std::string inner =
        "(local.set $acc " + ld(at2(B0, I, J, N3)) + ")" +
        forFrom("$k", "(i32.add (local.get $i) (i32.const 1))", c32(N3),
                "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                ld(at2(A0, K, I, N3)) + " " + ld(at2(B0, K, J, N3)) +
                ")))") +
        st(at2(B0, I, J, N3), "(f64.mul (f64.const 1.5) (local.get $acc))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N3 * N3) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3), forUp("$j", c32(N3), inner)) +
        fsum(B0, N3 * N3) + ")";
}

std::string
doitgen()
{
    // sum[p] = sum_s A[r][q][s]*C4[s][p]; A[r][q][p] = sum[p]; NR=NQ=NP=16
    constexpr int NP = 16;
    auto a3 = [](const std::string& r, const std::string& q,
                 const std::string& p) {
        return "(i32.add " + c32(A0) +
               " (i32.mul (i32.add (i32.mul (i32.add (i32.mul " + r + " " +
               c32(NP) + ") " + q + ") " + c32(NP) + ") " + p +
               ") (i32.const 8)))";
    };
    std::string inner =
        "(local.set $acc (f64.const 0))" +
        forUp("$s", c32(NP),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(a3(I, J, get("$s"))) + " " +
              ld(at2(C0, get("$s"), K, NP)) + ")))") +
        st(at1(V0, K), "(local.get $acc)");
    std::string writeBack =
        forUp("$k", c32(NP), st(a3(I, J, K), ld(at1(V0, K))));
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(NP * NP * NP) +
        " (i32.const 1)) (call $fill " + c32(C0) + " " + c32(NP * NP) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $s i32)"
        " (local $acc f64)" +
        forUp("$i", c32(NP),
              forUp("$j", c32(NP),
                    forUp("$k", c32(NP), inner) + writeBack)) +
        fsum(A0, NP * NP * NP) + ")";
}

// ---- factorizations / solvers, O(N^3), N = 24 ----

std::string
cholesky()
{
    // SPD init: A = fill, A[i][i] += 32
    std::string spd =
        "(call $fill " + c32(A0) + " " + c32(N3 * N3) + " (i32.const 1))" +
        forUp("$i", c32(N3),
              st(at2(A0, I, I, N3),
                 "(f64.add " + ld(at2(A0, I, I, N3)) +
                 " (f64.const 32))"));
    std::string jLoop =
        "(local.set $acc " + ld(at2(A0, I, J, N3)) + ")" +
        forFrom("$k", "(i32.const 0)", J,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, J, K, N3)) +
                ")))") +
        st(at2(A0, I, J, N3),
           "(f64.div (local.get $acc) " + ld(at2(A0, J, J, N3)) + ")");
    std::string diag =
        "(local.set $acc " + ld(at2(A0, I, I, N3)) + ")" +
        forFrom("$k", "(i32.const 0)", I,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, I, K, N3)) +
                ")))") +
        st(at2(A0, I, I, N3), "(f64.sqrt (f64.abs (local.get $acc)))");
    return
        "(func $init (local $i i32)" + spd + ")"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3),
              forFrom("$j", "(i32.const 0)", I, jLoop) + diag) +
        fsum(A0, N3 * N3) + ")";
}

std::string
lu()
{
    std::string upper =
        "(local.set $acc " + ld(at2(A0, I, J, N3)) + ")" +
        forFrom("$k", "(i32.const 0)", I,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, K, J, N3)) +
                ")))") +
        st(at2(A0, I, J, N3), "(local.get $acc)");
    std::string lower =
        "(local.set $acc " + ld(at2(A0, I, J, N3)) + ")" +
        forFrom("$k", "(i32.const 0)", J,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, K, J, N3)) +
                ")))") +
        st(at2(A0, I, J, N3),
           "(f64.div (local.get $acc)"
           " (f64.add " + ld(at2(A0, J, J, N3)) + " (f64.const 40)))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 5)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3),
              forFrom("$j", "(i32.const 0)", I, lower) +
              forFrom("$j", I, c32(N3), upper)) +
        fsum(A0, N3 * N3) + ")";
}

std::string
ludcmp()
{
    // LU + forward/backward substitution (b at V0, y at V1, x at V2)
    std::string fwd =
        "(local.set $acc " + ld(at1(V0, I)) + ")" +
        forFrom("$j", "(i32.const 0)", I,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, J, N3)) + " " + ld(at1(V1, J)) + ")))") +
        st(at1(V1, I), "(local.get $acc)");
    std::string bwd =
        "(local.set $acc " + ld(at1(V1, I)) + ")" +
        forFrom("$j", "(i32.add (local.get $i) (i32.const 1))", c32(N3),
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, J, N3)) + " " + ld(at1(V2, J)) + ")))") +
        st(at1(V2, I),
           "(f64.div (local.get $acc)"
           " (f64.add " + ld(at2(A0, I, I, N3)) + " (f64.const 40)))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 5)) (call $fill " + c32(V0) + " " + c32(N3) +
        " (i32.const 6)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$i", c32(N3),
              forFrom("$j", "(i32.const 0)", I,
                      "(local.set $acc " + ld(at2(A0, I, J, N3)) + ")" +
                      forFrom("$k", "(i32.const 0)", J,
                              "(local.set $acc (f64.sub (local.get $acc)"
                              " (f64.mul " + ld(at2(A0, I, K, N3)) + " " +
                              ld(at2(A0, K, J, N3)) + ")))") +
                      st(at2(A0, I, J, N3), "(local.get $acc)")) +
              forFrom("$j", I, c32(N3),
                      "(local.set $acc " + ld(at2(A0, I, J, N3)) + ")" +
                      forFrom("$k", "(i32.const 0)", I,
                              "(local.set $acc (f64.sub (local.get $acc)"
                              " (f64.mul " + ld(at2(A0, I, K, N3)) + " " +
                              ld(at2(A0, K, J, N3)) + ")))") +
                      st(at2(A0, I, J, N3), "(local.get $acc)"))) +
        forUp("$i", c32(N3), fwd) +
        forDown("$i", c32(N3), bwd) +
        fsum(V2, N3) + ")";
}

std::string
gramschmidt()
{
    // Modified Gram-Schmidt: A (N3 x N3) -> Q (in place), R at C0
    std::string norm =
        "(local.set $acc (f64.const 0))" +
        forUp("$i", c32(N3),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, I, K, N3)) +
              ")))") +
        st(at2(C0, K, K, N3),
           "(f64.sqrt (f64.add (local.get $acc) (f64.const 1e-9)))") +
        forUp("$i", c32(N3),
              st(at2(A0, I, K, N3),
                 "(f64.div " + ld(at2(A0, I, K, N3)) + " " +
                 ld(at2(C0, K, K, N3)) + ")"));
    std::string proj =
        "(local.set $acc (f64.const 0))" +
        forUp("$i", c32(N3),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, I, J, N3)) +
              ")))") +
        st(at2(C0, K, J, N3), "(local.get $acc)") +
        forUp("$i", c32(N3),
              st(at2(A0, I, J, N3),
                 "(f64.sub " + ld(at2(A0, I, J, N3)) + " (f64.mul " +
                 ld(at2(A0, I, K, N3)) + " " + ld(at2(C0, K, J, N3)) +
                 "))"));
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 7)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forUp("$k", c32(N3),
              norm +
              forFrom("$j", "(i32.add (local.get $k) (i32.const 1))",
                      c32(N3), proj)) +
        fsum(A0, N3 * N3) + ")";
}

std::string
correlation(bool covarianceOnly)
{
    // means at V0, stddev at V1; corr/cov into C0
    std::string means =
        forUp("$j", c32(N3),
              "(local.set $acc (f64.const 0))" +
              forUp("$i", c32(N3),
                    "(local.set $acc (f64.add (local.get $acc) " +
                    ld(at2(A0, I, J, N3)) + "))") +
              st(at1(V0, J),
                 "(f64.div (local.get $acc) (f64.const 24))"));
    std::string center =
        forUp("$i", c32(N3),
              forUp("$j", c32(N3),
                    st(at2(A0, I, J, N3),
                       "(f64.sub " + ld(at2(A0, I, J, N3)) + " " +
                       ld(at1(V0, J)) + ")")));
    std::string stddev =
        forUp("$j", c32(N3),
              "(local.set $acc (f64.const 0))" +
              forUp("$i", c32(N3),
                    "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
                    ld(at2(A0, I, J, N3)) + " " + ld(at2(A0, I, J, N3)) +
                    ")))") +
              st(at1(V1, J),
                 "(f64.sqrt (f64.add (f64.div (local.get $acc)"
                 " (f64.const 24)) (f64.const 0.1)))"));
    std::string normalize =
        forUp("$i", c32(N3),
              forUp("$j", c32(N3),
                    st(at2(A0, I, J, N3),
                       "(f64.div " + ld(at2(A0, I, J, N3)) + " " +
                       ld(at1(V1, J)) + ")")));
    std::string product =
        forUp("$i", c32(N3),
              forUp("$j", c32(N3),
                    "(local.set $acc (f64.const 0))" +
                    forUp("$k", c32(N3),
                          "(local.set $acc (f64.add (local.get $acc)"
                          " (f64.mul " + ld(at2(A0, K, I, N3)) + " " +
                          ld(at2(A0, K, J, N3)) + ")))") +
                    st(at2(C0, I, J, N3), "(local.get $acc)")));
    std::string body = means + center;
    if (!covarianceOnly) body += stddev + normalize;
    body += product;
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 9)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        body + fsum(C0, N3 * N3) + ")";
}

std::string
floydWarshall()
{
    std::string inner =
        st(at2(A0, I, J, N3),
           "(f64.min " + ld(at2(A0, I, J, N3)) + " (f64.add " +
           ld(at2(A0, I, K, N3)) + " " + ld(at2(A0, K, J, N3)) + "))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 11)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32)" +
        forUp("$k", c32(N3),
              forUp("$i", c32(N3), forUp("$j", c32(N3), inner))) +
        fsum(A0, N3 * N3) + ")";
}

std::string
nussinov()
{
    // Triangular DP with max over pairings (simplified base-pair score).
    std::string pairScore =
        "(f64.add " + ld(at2(A0, "(i32.add (local.get $i) (i32.const 1))",
                             "(i32.sub (local.get $j) (i32.const 1))",
                             N3)) +
        " (f64.load " +
        at1(V0, "(i32.rem_s (i32.add (local.get $i) (local.get $j))"
                " (i32.const 4))") + "))";
    std::string inner =
        "(local.set $acc (f64.max " +
        ld(at2(A0, "(i32.add (local.get $i) (i32.const 1))", J, N3)) + " " +
        ld(at2(A0, I, "(i32.sub (local.get $j) (i32.const 1))", N3)) +
        "))"
        "(local.set $acc (f64.max (local.get $acc) " + pairScore + "))" +
        forFrom("$k", "(i32.add (local.get $i) (i32.const 1))", J,
                "(local.set $acc (f64.max (local.get $acc) (f64.add " +
                ld(at2(A0, I, K, N3)) + " " +
                ld(at2(A0, "(i32.add (local.get $k) (i32.const 1))", J,
                       N3)) + ")))") +
        st(at2(A0, I, J, N3), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N3 * N3) +
        " (i32.const 13)) (call $fill " + c32(V0) + " (i32.const 4)"
        " (i32.const 14)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $acc f64)" +
        forDown("$i", c32(N3 - 1),
                forFrom("$j", "(i32.add (local.get $i) (i32.const 2))",
                        c32(N3), inner)) +
        fsum(A0, N3 * N3) + ")";
}

// ---- O(N^2) kernels, N = 120 ----

constexpr int N2 = 120;

std::string
gesummv()
{
    // y = 1.5*A*x + 1.2*B*x   (A at 0, B at 0x20000, x V0, y V1)
    constexpr long long BB = 0x20000;
    std::string inner =
        "(local.set $acc (f64.const 0))"
        "(local.set $tmp (f64.const 0))" +
        forUp("$j", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V0, J)) + ")))"
              "(local.set $tmp (f64.add (local.get $tmp) (f64.mul " +
              ld(at2(BB, I, J, N2)) + " " + ld(at1(V0, J)) + ")))") +
        st(at1(V1, I),
           "(f64.add (f64.mul (f64.const 1.5) (local.get $acc))"
           " (f64.mul (f64.const 1.2) (local.get $tmp)))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(BB) + " " + c32(N2 * N2) +
        " (i32.const 2)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64) (local $tmp f64)" +
        forUp("$i", c32(N2), inner) + fsum(V1, N2) + ")";
}

std::string
atax()
{
    // y = A^T (A x): tmp = A x (V1), y = A^T tmp (V2)
    std::string p1 =
        "(local.set $acc (f64.const 0))" +
        forUp("$j", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V0, J)) + ")))") +
        st(at1(V1, I), "(local.get $acc)");
    std::string p2 =
        "(local.set $acc (f64.const 0))" +
        forUp("$i", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V1, I)) + ")))") +
        st(at1(V2, J), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64)" +
        forUp("$i", c32(N2), p1) + forUp("$j", c32(N2), p2) +
        fsum(V2, N2) + ")";
}

std::string
bicg()
{
    // s = A^T r ; q = A p
    std::string p1 =
        "(local.set $acc (f64.const 0))" +
        forUp("$i", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V0, I)) + ")))") +
        st(at1(V2, J), "(local.get $acc)");
    std::string p2 =
        "(local.set $acc (f64.const 0))" +
        forUp("$j", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V1, J)) + ")))") +
        st(at1(V3, I), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 2)) (call $fill " + c32(V1) + " " + c32(N2) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64)" +
        forUp("$j", c32(N2), p1) + forUp("$i", c32(N2), p2) +
        "(f64.add " + fsum(V2, N2) + " " + fsum(V3, N2) + "))";
}

std::string
mvt()
{
    std::string p1 =
        "(local.set $acc " + ld(at1(V0, I)) + ")" +
        forUp("$j", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, I, J, N2)) + " " + ld(at1(V2, J)) + ")))") +
        st(at1(V0, I), "(local.get $acc)");
    std::string p2 =
        "(local.set $acc " + ld(at1(V1, I)) + ")" +
        forUp("$j", c32(N2),
              "(local.set $acc (f64.add (local.get $acc) (f64.mul " +
              ld(at2(A0, J, I, N2)) + " " + ld(at1(V3, J)) + ")))") +
        st(at1(V1, I), "(local.get $acc)");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 2)) (call $fill " + c32(V1) + " " + c32(N2) +
        " (i32.const 3)) (call $fill " + c32(V2) + " " + c32(N2) +
        " (i32.const 4)) (call $fill " + c32(V3) + " " + c32(N2) +
        " (i32.const 5)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64)" +
        forUp("$i", c32(N2), p1) + forUp("$i", c32(N2), p2) +
        "(f64.add " + fsum(V0, N2) + " " + fsum(V1, N2) + "))";
}

std::string
gemver()
{
    // A += u1 v1^T + u2 v2^T ; x = 1.2*A^T*y + z ; w = 1.5*A*x
    std::string rank2 =
        forUp("$i", c32(N2),
              forUp("$j", c32(N2),
                    st(at2(A0, I, J, N2),
                       "(f64.add " + ld(at2(A0, I, J, N2)) +
                       " (f64.add (f64.mul " + ld(at1(V0, I)) + " " +
                       ld(at1(V1, J)) + ") (f64.mul " + ld(at1(V2, I)) +
                       " " + ld(at1(V3, J)) + ")))")));
    std::string xUpd =
        forUp("$i", c32(N2),
              "(local.set $acc " + ld(at1(V4, I)) + ")" +
              forUp("$j", c32(N2),
                    "(local.set $acc (f64.add (local.get $acc)"
                    " (f64.mul (f64.mul (f64.const 1.2) " +
                    ld(at2(A0, J, I, N2)) + ") " + ld(at1(V5, J)) +
                    ")))") +
              st(at1(V4, I), "(local.get $acc)"));
    std::string wUpd =
        forUp("$i", c32(N2),
              "(local.set $acc (f64.const 0))" +
              forUp("$j", c32(N2),
                    "(local.set $acc (f64.add (local.get $acc)"
                    " (f64.mul (f64.mul (f64.const 1.5) " +
                    ld(at2(A0, I, J, N2)) + ") " + ld(at1(V4, J)) +
                    ")))") +
              st(at1(V5, I), "(local.get $acc)"));
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 2)) (call $fill " + c32(V1) + " " + c32(N2) +
        " (i32.const 3)) (call $fill " + c32(V2) + " " + c32(N2) +
        " (i32.const 4)) (call $fill " + c32(V3) + " " + c32(N2) +
        " (i32.const 5)) (call $fill " + c32(V4) + " " + c32(N2) +
        " (i32.const 6)) (call $fill " + c32(V5) + " " + c32(N2) +
        " (i32.const 7)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64)" +
        rank2 + xUpd + wUpd + fsum(V5, N2) + ")";
}

std::string
trisolv()
{
    std::string inner =
        "(local.set $acc " + ld(at1(V0, I)) + ")" +
        forFrom("$j", "(i32.const 0)", I,
                "(local.set $acc (f64.sub (local.get $acc) (f64.mul " +
                ld(at2(A0, I, J, N2)) + " " + ld(at1(V1, J)) + ")))") +
        st(at1(V1, I),
           "(f64.div (local.get $acc) (f64.add " + ld(at2(A0, I, I, N2)) +
           " (f64.const 1.5)))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N2 * N2) +
        " (i32.const 1)) (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $acc f64)" +
        forUp("$i", c32(N2), inner) + fsum(V1, N2) + ")";
}

std::string
durbin()
{
    // Levinson-Durbin recursion on r (V0); y at V1, z scratch V2.
    std::string inner =
        // alpha = -(r[k] + dot(r[k-1..0], y)) / beta
        "(local.set $acc " + ld(at1(V0, K)) + ")" +
        forFrom("$i", "(i32.const 0)", K,
                "(local.set $acc (f64.add (local.get $acc) (f64.mul "
                "(f64.load " +
                at1(V0, "(i32.sub (i32.sub (local.get $k) (local.get $i))"
                        " (i32.const 1))") + ") " + ld(at1(V1, I)) +
                ")))") +
        "(local.set $alpha (f64.div (f64.neg (local.get $acc))"
        " (f64.add (local.get $beta) (f64.const 1.0))))"
        "(local.set $beta (f64.mul (local.get $beta)"
        " (f64.sub (f64.const 1.0)"
        " (f64.mul (local.get $alpha) (local.get $alpha)))))" +
        forFrom("$i", "(i32.const 0)", K,
                st(at1(V2, I),
                   "(f64.add " + ld(at1(V1, I)) +
                   " (f64.mul (local.get $alpha) (f64.load " +
                   at1(V1, "(i32.sub (i32.sub (local.get $k)"
                           " (local.get $i)) (i32.const 1))") + ")))")) +
        forFrom("$i", "(i32.const 0)", K,
                st(at1(V1, I), ld(at1(V2, I)))) +
        st(at1(V1, K), "(local.get $alpha)");
    return
        "(func $init (call $fill " + c32(V0) + " " + c32(N2) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $k i32) (local $acc f64)"
        " (local $alpha f64) (local $beta f64)"
        "(local.set $beta (f64.const 1))"
        "(local.set $alpha (f64.neg " + ld(at1(V0, "(i32.const 0)")) + "))" +
        st(at1(V1, "(i32.const 0)"), "(local.get $alpha)") +
        forFrom("$k", "(i32.const 1)", c32(N2), inner) +
        fsum(V1, N2) + ")";
}

// ---- stencils ----

std::string
jacobi1d()
{
    constexpr int N = 2000, TS = 20;
    std::string sweepAB =
        forFrom("$i", "(i32.const 1)", c32(N - 1),
                st(at1(V1, I),
                   "(f64.mul (f64.const 0.33333) (f64.add (f64.add "
                   "(f64.load " +
                   at1(V0, "(i32.sub (local.get $i) (i32.const 1))") +
                   ") " + ld(at1(V0, I)) + ") (f64.load " +
                   at1(V0, "(i32.add (local.get $i) (i32.const 1))") +
                   ")))"));
    std::string sweepBA =
        forFrom("$i", "(i32.const 1)", c32(N - 1),
                st(at1(V0, I),
                   "(f64.mul (f64.const 0.33333) (f64.add (f64.add "
                   "(f64.load " +
                   at1(V1, "(i32.sub (local.get $i) (i32.const 1))") +
                   ") " + ld(at1(V1, I)) + ") (f64.load " +
                   at1(V1, "(i32.add (local.get $i) (i32.const 1))") +
                   ")))"));
    return
        "(func $init (call $fill " + c32(V0) + " " + c32(N) +
        " (i32.const 1)) (call $fill " + c32(V1) + " " + c32(N) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $t i32)" +
        forUp("$t", c32(TS), sweepAB + sweepBA) + fsum(V0, N) + ")";
}

std::string
jacobi2d()
{
    constexpr int N = 32, TS = 8;
    auto stencil = [&](long long dst, long long src) {
        return forFrom("$i", "(i32.const 1)", c32(N - 1),
            forFrom("$j", "(i32.const 1)", c32(N - 1),
                st(at2(dst, I, J, N),
                   "(f64.mul (f64.const 0.2) (f64.add (f64.add (f64.add"
                   " (f64.add " + ld(at2(src, I, J, N)) + " " +
                   ld(at2(src, I, "(i32.sub (local.get $j) (i32.const 1))",
                          N)) + ") " +
                   ld(at2(src, I, "(i32.add (local.get $j) (i32.const 1))",
                          N)) + ") " +
                   ld(at2(src, "(i32.add (local.get $i) (i32.const 1))", J,
                          N)) + ") " +
                   ld(at2(src, "(i32.sub (local.get $i) (i32.const 1))", J,
                          N)) + "))")));
    };
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N * N) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N * N) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $t i32)" +
        forUp("$t", c32(TS), stencil(B0, A0) + stencil(A0, B0)) +
        fsum(A0, N * N) + ")";
}

std::string
seidel2d()
{
    constexpr int N = 32, TS = 8;
    std::string inner =
        st(at2(A0, I, J, N),
           "(f64.div (f64.add (f64.add (f64.add (f64.add " +
           ld(at2(A0, "(i32.sub (local.get $i) (i32.const 1))", J, N)) +
           " " + ld(at2(A0, I, "(i32.sub (local.get $j) (i32.const 1))",
                        N)) + ") " +
           ld(at2(A0, I, J, N)) + ") " +
           ld(at2(A0, I, "(i32.add (local.get $j) (i32.const 1))", N)) +
           ") " +
           ld(at2(A0, "(i32.add (local.get $i) (i32.const 1))", J, N)) +
           ") (f64.const 5))");
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N * N) +
        " (i32.const 1)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $t i32)" +
        forUp("$t", c32(TS),
              forFrom("$i", "(i32.const 1)", c32(N - 1),
                      forFrom("$j", "(i32.const 1)", c32(N - 1), inner))) +
        fsum(A0, N * N) + ")";
}

std::string
fdtd2d()
{
    constexpr int N = 32, TS = 8;
    // ey at A0, ex at B0, hz at C0
    std::string eyUpd =
        forFrom("$i", "(i32.const 1)", c32(N),
            forUp("$j", c32(N),
                st(at2(A0, I, J, N),
                   "(f64.sub " + ld(at2(A0, I, J, N)) +
                   " (f64.mul (f64.const 0.5) (f64.sub " +
                   ld(at2(C0, I, J, N)) + " " +
                   ld(at2(C0, "(i32.sub (local.get $i) (i32.const 1))", J,
                          N)) + ")))")));
    std::string exUpd =
        forUp("$i", c32(N),
            forFrom("$j", "(i32.const 1)", c32(N),
                st(at2(B0, I, J, N),
                   "(f64.sub " + ld(at2(B0, I, J, N)) +
                   " (f64.mul (f64.const 0.5) (f64.sub " +
                   ld(at2(C0, I, J, N)) + " " +
                   ld(at2(C0, I, "(i32.sub (local.get $j) (i32.const 1))",
                          N)) + ")))")));
    std::string hzUpd =
        forUp("$i", c32(N - 1),
            forUp("$j", c32(N - 1),
                st(at2(C0, I, J, N),
                   "(f64.sub " + ld(at2(C0, I, J, N)) +
                   " (f64.mul (f64.const 0.7) (f64.add (f64.sub " +
                   ld(at2(B0, I, "(i32.add (local.get $j) (i32.const 1))",
                          N)) + " " + ld(at2(B0, I, J, N)) +
                   ") (f64.sub " +
                   ld(at2(A0, "(i32.add (local.get $i) (i32.const 1))", J,
                          N)) + " " + ld(at2(A0, I, J, N)) + "))))")));
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N * N) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N * N) +
        " (i32.const 2)) (call $fill " + c32(C0) + " " + c32(N * N) +
        " (i32.const 3)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $t i32)" +
        forUp("$t", c32(TS), eyUpd + exUpd + hzUpd) +
        fsum(C0, N * N) + ")";
}

std::string
adi()
{
    constexpr int N = 32, TS = 4;
    // Simplified ADI: column sweep then row sweep of tridiagonal updates.
    std::string colSweep =
        forFrom("$i", "(i32.const 1)", c32(N - 1),
            forFrom("$j", "(i32.const 1)", c32(N - 1),
                st(at2(B0, I, J, N),
                   "(f64.add (f64.mul (f64.const 0.25) " +
                   ld(at2(A0, "(i32.sub (local.get $i) (i32.const 1))", J,
                          N)) + ") (f64.add (f64.mul (f64.const 0.5) " +
                   ld(at2(A0, I, J, N)) +
                   ") (f64.mul (f64.const 0.25) " +
                   ld(at2(A0, "(i32.add (local.get $i) (i32.const 1))", J,
                          N)) + ")))")));
    std::string rowSweep =
        forFrom("$i", "(i32.const 1)", c32(N - 1),
            forFrom("$j", "(i32.const 1)", c32(N - 1),
                st(at2(A0, I, J, N),
                   "(f64.add (f64.mul (f64.const 0.25) " +
                   ld(at2(B0, I, "(i32.sub (local.get $j) (i32.const 1))",
                          N)) + ") (f64.add (f64.mul (f64.const 0.5) " +
                   ld(at2(B0, I, J, N)) +
                   ") (f64.mul (f64.const 0.25) " +
                   ld(at2(B0, I, "(i32.add (local.get $j) (i32.const 1))",
                          N)) + ")))")));
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N * N) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N * N) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $t i32)" +
        forUp("$t", c32(TS), colSweep + rowSweep) + fsum(A0, N * N) + ")";
}

std::string
heat3d()
{
    constexpr int N = 12, TS = 6;
    auto a3 = [&](long long base, const std::string& i,
                  const std::string& j, const std::string& k) {
        return "(i32.add " + c32(base) +
               " (i32.mul (i32.add (i32.mul (i32.add (i32.mul " + i + " " +
               c32(N) + ") " + j + ") " + c32(N) + ") " + k +
               ") (i32.const 8)))";
    };
    std::string im1 = "(i32.sub (local.get $i) (i32.const 1))";
    std::string ip1 = "(i32.add (local.get $i) (i32.const 1))";
    std::string jm1 = "(i32.sub (local.get $j) (i32.const 1))";
    std::string jp1 = "(i32.add (local.get $j) (i32.const 1))";
    std::string km1 = "(i32.sub (local.get $k) (i32.const 1))";
    std::string kp1 = "(i32.add (local.get $k) (i32.const 1))";
    auto sweep = [&](long long dst, long long src) {
        return forFrom("$i", "(i32.const 1)", c32(N - 1),
            forFrom("$j", "(i32.const 1)", c32(N - 1),
                forFrom("$k", "(i32.const 1)", c32(N - 1),
                    st(a3(dst, I, J, K),
                       "(f64.add " + ld(a3(src, I, J, K)) +
                       " (f64.mul (f64.const 0.125) (f64.add (f64.add"
                       " (f64.sub (f64.add " + ld(a3(src, im1, J, K)) +
                       " " + ld(a3(src, ip1, J, K)) +
                       ") (f64.mul (f64.const 2) " + ld(a3(src, I, J, K)) +
                       ")) (f64.sub (f64.add " + ld(a3(src, I, jm1, K)) +
                       " " + ld(a3(src, I, jp1, K)) +
                       ") (f64.mul (f64.const 2) " + ld(a3(src, I, J, K)) +
                       "))) (f64.sub (f64.add " + ld(a3(src, I, J, km1)) +
                       " " + ld(a3(src, I, J, kp1)) +
                       ") (f64.mul (f64.const 2) " + ld(a3(src, I, J, K)) +
                       ")))))"))));
    };
    return
        "(func $init (call $fill " + c32(A0) + " " + c32(N * N * N) +
        " (i32.const 1)) (call $fill " + c32(B0) + " " + c32(N * N * N) +
        " (i32.const 2)))"
        "(func $kernel (result f64)"
        " (local $i i32) (local $j i32) (local $k i32) (local $t i32)" +
        forUp("$t", c32(TS), sweep(B0, A0) + sweep(A0, B0)) +
        fsum(A0, N * N * N) + ")";
}

} // namespace

void
registerPolybench(std::vector<BenchProgram>* out)
{
    out->push_back(make("jacobi-1d", jacobi1d(), 4));
    out->push_back(make("trisolv", trisolv(), 8));
    out->push_back(make("gesummv", gesummv(), 8));
    out->push_back(make("durbin", durbin(), 8));
    out->push_back(make("bicg", bicg(), 8));
    out->push_back(make("atax", atax(), 8));
    out->push_back(make("mvt", mvt(), 8));
    out->push_back(make("gemver", gemver(), 4));
    out->push_back(make("trmm", trmm(), 4));
    out->push_back(make("doitgen", doitgen(), 4));
    out->push_back(make("syrk", syrk(), 4));
    out->push_back(make("correlation", correlation(false), 4));
    out->push_back(make("covariance", correlation(true), 4));
    out->push_back(make("symm", symm(), 4));
    out->push_back(make("gemm", gemm(), 4));
    out->push_back(make("syr2k", syr2k(), 4));
    out->push_back(make("gramschmidt", gramschmidt(), 4));
    out->push_back(make("2mm", mm2(), 4));
    out->push_back(make("fdtd-2d", fdtd2d(), 4));
    out->push_back(make("nussinov", nussinov(), 4));
    out->push_back(make("3mm", mm3(), 4));
    out->push_back(make("jacobi-2d", jacobi2d(), 4));
    out->push_back(make("adi", adi(), 4));
    out->push_back(make("seidel-2d", seidel2d(), 4));
    out->push_back(make("heat-3d", heat3d(), 4));
    out->push_back(make("cholesky", cholesky(), 4));
    out->push_back(make("ludcmp", ludcmp(), 4));
    out->push_back(make("lu", lu(), 4));
    out->push_back(make("floyd-warshall", floydWarshall(), 2));
}

} // namespace wizpp
