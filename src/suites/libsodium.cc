/**
 * @file
 * Libsodium-style crypto kernels hand-ported to WAT (paper
 * Section 5.1). The libsodium benchmark suite runs each primitive at
 * several message sizes (auth/auth2/auth3/..., secretbox/secretbox2,
 * scalarmult2..7); we reproduce that structure: nine primitive modules
 * — ChaCha20, Salsa20-style stream, SipHash-2-4, Poly1305-style MAC
 * (reduced-modulus), SHA-256-style compression, BLAKE2-style i64
 * mixing, Montgomery-ladder scalar multiplication (reduced field),
 * xorshift key generation and an AEAD composition — registered under
 * the suite's program names with different workload scales
 * (DESIGN.md substitution S4).
 */

#include "suites/suites.h"

#include "suites/watbuild.h"

namespace wizpp {

namespace {

BenchProgram
make(const std::string& name, const std::string& body, uint32_t defaultN)
{
    BenchProgram p;
    p.suite = "libsodium";
    p.name = name;
    p.wat = "(module (memory 4)\n" + std::string(kSuitePrelude) + body +
            ")";
    p.defaultN = defaultN;
    return p;
}

// ChaCha20: 16-word state at address 0; run(n) generates n*16 blocks.
const char* kChaCha = R"WAT(
  (func $ldw (param $i i32) (result i32)
    (i32.load (i32.mul (local.get $i) (i32.const 4))))
  (func $stw (param $i i32) (param $v i32)
    (i32.store (i32.mul (local.get $i) (i32.const 4)) (local.get $v)))
  (func $qr (param $a i32) (param $b i32) (param $c i32) (param $d i32)
    (call $stw (local.get $a)
      (i32.add (call $ldw (local.get $a)) (call $ldw (local.get $b))))
    (call $stw (local.get $d)
      (i32.rotl (i32.xor (call $ldw (local.get $d))
                         (call $ldw (local.get $a))) (i32.const 16)))
    (call $stw (local.get $c)
      (i32.add (call $ldw (local.get $c)) (call $ldw (local.get $d))))
    (call $stw (local.get $b)
      (i32.rotl (i32.xor (call $ldw (local.get $b))
                         (call $ldw (local.get $c))) (i32.const 12)))
    (call $stw (local.get $a)
      (i32.add (call $ldw (local.get $a)) (call $ldw (local.get $b))))
    (call $stw (local.get $d)
      (i32.rotl (i32.xor (call $ldw (local.get $d))
                         (call $ldw (local.get $a))) (i32.const 8)))
    (call $stw (local.get $c)
      (i32.add (call $ldw (local.get $c)) (call $ldw (local.get $d))))
    (call $stw (local.get $b)
      (i32.rotl (i32.xor (call $ldw (local.get $b))
                         (call $ldw (local.get $c))) (i32.const 7))))
  (func $seed (param $ctr i32)
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 16)))
      (call $stw (local.get $i)
        (i32.add (i32.mul (local.get $i) (i32.const 0x9e3779b9))
                 (local.get $ctr)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l))))
  (func $block
    (local $r i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (i32.const 10)))
      (call $qr (i32.const 0) (i32.const 4) (i32.const 8) (i32.const 12))
      (call $qr (i32.const 1) (i32.const 5) (i32.const 9) (i32.const 13))
      (call $qr (i32.const 2) (i32.const 6) (i32.const 10) (i32.const 14))
      (call $qr (i32.const 3) (i32.const 7) (i32.const 11) (i32.const 15))
      (call $qr (i32.const 0) (i32.const 5) (i32.const 10) (i32.const 15))
      (call $qr (i32.const 1) (i32.const 6) (i32.const 11) (i32.const 12))
      (call $qr (i32.const 2) (i32.const 7) (i32.const 8) (i32.const 13))
      (call $qr (i32.const 3) (i32.const 4) (i32.const 9) (i32.const 14))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l))))
  (func (export "run") (param $n i32) (result f64)
    (local $b i32) (local $blocks i32) (local $acc i32)
    (local.set $blocks (i32.mul (local.get $n) (i32.const 16)))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $b) (local.get $blocks)))
      (call $seed (local.get $b))
      (call $block)
      (local.set $acc (i32.add (local.get $acc) (call $ldw (i32.const 0))))
      (local.set $b (i32.add (local.get $b) (i32.const 1)))
      (br $l)))
    (f64.convert_i32_u (local.get $acc)))
)WAT";

// Salsa20-style stream: like ChaCha with the column/row round pattern,
// XORing keystream into an 8 KiB buffer at 4096.
const char* kStream = R"WAT(
  (func $ldw (param $i i32) (result i32)
    (i32.load (i32.mul (local.get $i) (i32.const 4))))
  (func $stw (param $i i32) (param $v i32)
    (i32.store (i32.mul (local.get $i) (i32.const 4)) (local.get $v)))
  (func $sr (param $a i32) (param $b i32) (param $c i32) (param $r i32)
    (call $stw (local.get $a)
      (i32.xor (call $ldw (local.get $a))
        (i32.rotl (i32.add (call $ldw (local.get $b))
                           (call $ldw (local.get $c)))
                  (local.get $r)))))
  (func $seed (param $ctr i32)
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 16)))
      (call $stw (local.get $i)
        (i32.add (i32.mul (local.get $i) (i32.const 0x85ebca6b))
                 (local.get $ctr)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l))))
  (func $block
    (local $r i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (i32.const 10)))
      (call $sr (i32.const 4) (i32.const 0) (i32.const 12) (i32.const 7))
      (call $sr (i32.const 8) (i32.const 4) (i32.const 0) (i32.const 9))
      (call $sr (i32.const 12) (i32.const 8) (i32.const 4) (i32.const 13))
      (call $sr (i32.const 0) (i32.const 12) (i32.const 8) (i32.const 18))
      (call $sr (i32.const 1) (i32.const 0) (i32.const 3) (i32.const 7))
      (call $sr (i32.const 2) (i32.const 1) (i32.const 0) (i32.const 9))
      (call $sr (i32.const 3) (i32.const 2) (i32.const 1) (i32.const 13))
      (call $sr (i32.const 0) (i32.const 3) (i32.const 2) (i32.const 18))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l))))
  (func (export "run") (param $n i32) (result f64)
    (local $rep i32) (local $i i32) (local $acc i32)
    (block $xr (loop $lr
      (br_if $xr (i32.ge_s (local.get $rep) (local.get $n)))
      ;; 128 blocks of keystream XORed into the message buffer
      (local.set $i (i32.const 0))
      (block $x (loop $l
        (br_if $x (i32.ge_s (local.get $i) (i32.const 128)))
        (call $seed (local.get $i))
        (call $block)
        ;; xor 64 bytes (16 words) into buffer at 4096 + i*64
        (i32.store (i32.add (i32.const 4096)
                            (i32.mul (local.get $i) (i32.const 4)))
          (i32.xor
            (i32.load (i32.add (i32.const 4096)
                               (i32.mul (local.get $i) (i32.const 4))))
            (call $ldw (i32.and (local.get $i) (i32.const 15)))))
        (local.set $acc (i32.add (local.get $acc)
                                 (call $ldw (i32.const 5))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.set $rep (i32.add (local.get $rep) (i32.const 1)))
      (br $lr)))
    (f64.convert_i32_u (local.get $acc)))
)WAT";

// SipHash-2-4 over an 8 KiB message at address 0 (i64 lanes in globals).
const char* kSipHash = R"WAT(
  (global $v0 (mut i64) (i64.const 0x736f6d6570736575))
  (global $v1 (mut i64) (i64.const 0x646f72616e646f6d))
  (global $v2 (mut i64) (i64.const 0x6c7967656e657261))
  (global $v3 (mut i64) (i64.const 0x7465646279746573))
  (func $round
    (global.set $v0 (i64.add (global.get $v0) (global.get $v1)))
    (global.set $v1 (i64.rotl (global.get $v1) (i64.const 13)))
    (global.set $v1 (i64.xor (global.get $v1) (global.get $v0)))
    (global.set $v0 (i64.rotl (global.get $v0) (i64.const 32)))
    (global.set $v2 (i64.add (global.get $v2) (global.get $v3)))
    (global.set $v3 (i64.rotl (global.get $v3) (i64.const 16)))
    (global.set $v3 (i64.xor (global.get $v3) (global.get $v2)))
    (global.set $v0 (i64.add (global.get $v0) (global.get $v3)))
    (global.set $v3 (i64.rotl (global.get $v3) (i64.const 21)))
    (global.set $v3 (i64.xor (global.get $v3) (global.get $v0)))
    (global.set $v2 (i64.add (global.get $v2) (global.get $v1)))
    (global.set $v1 (i64.rotl (global.get $v1) (i64.const 17)))
    (global.set $v1 (i64.xor (global.get $v1) (global.get $v2)))
    (global.set $v2 (i64.rotl (global.get $v2) (i64.const 32))))
  (func $hash (result i64)
    (local $i i32) (local $m i64)
    (global.set $v0 (i64.const 0x736f6d6570736575))
    (global.set $v1 (i64.const 0x646f72616e646f6d))
    (global.set $v2 (i64.const 0x6c7967656e657261))
    (global.set $v3 (i64.const 0x7465646279746573))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (local.set $m (i64.load (local.get $i)))
      (global.set $v3 (i64.xor (global.get $v3) (local.get $m)))
      (call $round)
      (call $round)
      (global.set $v0 (i64.xor (global.get $v0) (local.get $m)))
      (local.set $i (i32.add (local.get $i) (i32.const 8)))
      (br $l)))
    (global.set $v2 (i64.xor (global.get $v2) (i64.const 0xff)))
    (call $round)
    (call $round)
    (call $round)
    (call $round)
    (i64.xor (i64.xor (global.get $v0) (global.get $v1))
             (i64.xor (global.get $v2) (global.get $v3))))
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (i64.store (local.get $i)
        (i64.mul (i64.extend_i32_s (local.get $i))
                 (i64.const 0x9e3779b97f4a7c15)))
      (local.set $i (i32.add (local.get $i) (i32.const 8)))
      (br $l))))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $acc i64)
    (call $init)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $acc (i64.add (local.get $acc) (call $hash)))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l)))
    (f64.convert_i64_s (local.get $acc)))
)WAT";

// Poly1305-style MAC with a reduced modulus (2^31-1) so 64-bit
// products never overflow; same accumulate-multiply-reduce loop shape.
const char* kOnetimeAuth = R"WAT(
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (i64.store (local.get $i)
        (i64.mul (i64.extend_i32_s (i32.add (local.get $i) (i32.const 3)))
                 (i64.const 0x2545f4914f6cdd1d)))
      (local.set $i (i32.add (local.get $i) (i32.const 8)))
      (br $l))))
  (func $mac (param $r i64) (result i64)
    (local $i i32) (local $acc i64) (local $m i64)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (local.set $m (i64.and (i64.load (local.get $i))
                             (i64.const 0x7fffffff)))
      (local.set $acc
        (i64.rem_u
          (i64.mul (i64.add (local.get $acc) (local.get $m))
                   (local.get $r))
          (i64.const 2147483647)))
      (local.set $i (i32.add (local.get $i) (i32.const 8)))
      (br $l)))
    (local.get $acc))
  (func (export "run") (param $n i32) (result f64)
    (local $rep i32) (local $acc i64)
    (call $init)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $rep) (local.get $n)))
      (local.set $acc (i64.add (local.get $acc)
        (call $mac (i64.add (i64.const 12345)
                            (i64.extend_i32_s (local.get $rep))))))
      (local.set $rep (i32.add (local.get $rep) (i32.const 1)))
      (br $l)))
    (f64.convert_i64_s (local.get $acc)))
)WAT";

// SHA-256-style compression over a 4 KiB message (schedule + 64 rounds).
const char* kSha = R"WAT(
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 4096)))
      (i32.store (local.get $i)
        (i32.mul (i32.add (local.get $i) (i32.const 7))
                 (i32.const 0x45d9f3b)))
      (local.set $i (i32.add (local.get $i) (i32.const 4)))
      (br $l))))
  ;; message schedule scratch at 8192 (64 words per block)
  (func $compress (param $blockBase i32) (result i32)
    (local $i i32) (local $a i32) (local $b i32) (local $c i32)
    (local $d i32) (local $e i32) (local $f i32) (local $g i32)
    (local $h i32) (local $t1 i32) (local $t2 i32) (local $w i32)
    ;; schedule: first 16 words copied, next 48 expanded
    (local.set $i (i32.const 0))
    (block $x1 (loop $l1
      (br_if $x1 (i32.ge_s (local.get $i) (i32.const 16)))
      (i32.store
        (i32.add (i32.const 8192) (i32.mul (local.get $i) (i32.const 4)))
        (i32.load (i32.add (local.get $blockBase)
                           (i32.mul (local.get $i) (i32.const 4)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l1)))
    (block $x2 (loop $l2
      (br_if $x2 (i32.ge_s (local.get $i) (i32.const 64)))
      (local.set $w
        (i32.load (i32.add (i32.const 8192)
          (i32.mul (i32.sub (local.get $i) (i32.const 15))
                   (i32.const 4)))))
      (local.set $t1
        (i32.xor (i32.xor (i32.rotr (local.get $w) (i32.const 7))
                          (i32.rotr (local.get $w) (i32.const 18)))
                 (i32.shr_u (local.get $w) (i32.const 3))))
      (local.set $w
        (i32.load (i32.add (i32.const 8192)
          (i32.mul (i32.sub (local.get $i) (i32.const 2))
                   (i32.const 4)))))
      (local.set $t2
        (i32.xor (i32.xor (i32.rotr (local.get $w) (i32.const 17))
                          (i32.rotr (local.get $w) (i32.const 19)))
                 (i32.shr_u (local.get $w) (i32.const 10))))
      (i32.store
        (i32.add (i32.const 8192) (i32.mul (local.get $i) (i32.const 4)))
        (i32.add
          (i32.add
            (i32.load (i32.add (i32.const 8192)
              (i32.mul (i32.sub (local.get $i) (i32.const 16))
                       (i32.const 4))))
            (local.get $t1))
          (i32.add
            (i32.load (i32.add (i32.const 8192)
              (i32.mul (i32.sub (local.get $i) (i32.const 7))
                       (i32.const 4))))
            (local.get $t2))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l2)))
    ;; rounds
    (local.set $a (i32.const 0x6a09e667))
    (local.set $b (i32.const 0xbb67ae85))
    (local.set $c (i32.const 0x3c6ef372))
    (local.set $d (i32.const 0xa54ff53a))
    (local.set $e (i32.const 0x510e527f))
    (local.set $f (i32.const 0x9b05688c))
    (local.set $g (i32.const 0x1f83d9ab))
    (local.set $h (i32.const 0x5be0cd19))
    (local.set $i (i32.const 0))
    (block $x3 (loop $l3
      (br_if $x3 (i32.ge_s (local.get $i) (i32.const 64)))
      (local.set $t1
        (i32.add
          (i32.add
            (i32.add (local.get $h)
              (i32.xor (i32.xor
                (i32.rotr (local.get $e) (i32.const 6))
                (i32.rotr (local.get $e) (i32.const 11)))
                (i32.rotr (local.get $e) (i32.const 25))))
            (i32.xor (i32.and (local.get $e) (local.get $f))
                     (i32.and (i32.xor (local.get $e) (i32.const -1))
                              (local.get $g))))
          (i32.add
            (i32.mul (local.get $i) (i32.const 0x428a2f98))
            (i32.load (i32.add (i32.const 8192)
                               (i32.mul (local.get $i) (i32.const 4)))))))
      (local.set $t2
        (i32.add
          (i32.xor (i32.xor (i32.rotr (local.get $a) (i32.const 2))
                            (i32.rotr (local.get $a) (i32.const 13)))
                   (i32.rotr (local.get $a) (i32.const 22)))
          (i32.xor (i32.xor (i32.and (local.get $a) (local.get $b))
                            (i32.and (local.get $a) (local.get $c)))
                   (i32.and (local.get $b) (local.get $c)))))
      (local.set $h (local.get $g))
      (local.set $g (local.get $f))
      (local.set $f (local.get $e))
      (local.set $e (i32.add (local.get $d) (local.get $t1)))
      (local.set $d (local.get $c))
      (local.set $c (local.get $b))
      (local.set $b (local.get $a))
      (local.set $a (i32.add (local.get $t1) (local.get $t2)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l3)))
    (i32.add (local.get $a) (local.get $e)))
  (func $digest (result i32)
    (local $b i32) (local $acc i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $b) (i32.const 4096)))
      (local.set $acc (i32.add (local.get $acc)
                               (call $compress (local.get $b))))
      (local.set $b (i32.add (local.get $b) (i32.const 64)))
      (br $l)))
    (local.get $acc))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $acc i32)
    (call $init)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc) (call $digest)))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l)))
    (f64.convert_i32_u (local.get $acc)))
)WAT";

// BLAKE2b-style i64 mixing (generichash): G function over a 16-lane
// i64 working vector in memory, 12 rounds per 128-byte block.
const char* kGenericHash = R"WAT(
  (func $ldq (param $i i32) (result i64)
    (i64.load (i32.add (i32.const 8192)
                       (i32.mul (local.get $i) (i32.const 8)))))
  (func $stq (param $i i32) (param $v i64)
    (i64.store (i32.add (i32.const 8192)
                        (i32.mul (local.get $i) (i32.const 8)))
               (local.get $v)))
  (func $g (param $a i32) (param $b i32) (param $c i32) (param $d i32)
           (param $x i64) (param $y i64)
    (call $stq (local.get $a)
      (i64.add (i64.add (call $ldq (local.get $a))
                        (call $ldq (local.get $b))) (local.get $x)))
    (call $stq (local.get $d)
      (i64.rotr (i64.xor (call $ldq (local.get $d))
                         (call $ldq (local.get $a))) (i64.const 32)))
    (call $stq (local.get $c)
      (i64.add (call $ldq (local.get $c)) (call $ldq (local.get $d))))
    (call $stq (local.get $b)
      (i64.rotr (i64.xor (call $ldq (local.get $b))
                         (call $ldq (local.get $c))) (i64.const 24)))
    (call $stq (local.get $a)
      (i64.add (i64.add (call $ldq (local.get $a))
                        (call $ldq (local.get $b))) (local.get $y)))
    (call $stq (local.get $d)
      (i64.rotr (i64.xor (call $ldq (local.get $d))
                         (call $ldq (local.get $a))) (i64.const 16)))
    (call $stq (local.get $c)
      (i64.add (call $ldq (local.get $c)) (call $ldq (local.get $d))))
    (call $stq (local.get $b)
      (i64.rotr (i64.xor (call $ldq (local.get $b))
                         (call $ldq (local.get $c))) (i64.const 63))))
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 4096)))
      (i64.store (local.get $i)
        (i64.mul (i64.extend_i32_s (i32.add (local.get $i) (i32.const 11)))
                 (i64.const 0x9e3779b97f4a7c15)))
      (local.set $i (i32.add (local.get $i) (i32.const 8)))
      (br $l))))
  (func $blockmix (param $base i32)
    (local $r i32)
    ;; load working vector
    (local $i i32)
    (local.set $i (i32.const 0))
    (block $xv (loop $lv
      (br_if $xv (i32.ge_s (local.get $i) (i32.const 16)))
      (call $stq (local.get $i)
        (i64.xor
          (i64.load (i32.add (local.get $base)
                             (i32.mul (i32.and (local.get $i) (i32.const 15))
                                      (i32.const 8))))
          (i64.mul (i64.extend_i32_s (local.get $i))
                   (i64.const 0x6a09e667f3bcc908))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $lv)))
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (i32.const 12)))
      (call $g (i32.const 0) (i32.const 4) (i32.const 8) (i32.const 12)
        (i64.load (local.get $base))
        (i64.load (i32.add (local.get $base) (i32.const 8))))
      (call $g (i32.const 1) (i32.const 5) (i32.const 9) (i32.const 13)
        (i64.load (i32.add (local.get $base) (i32.const 16)))
        (i64.load (i32.add (local.get $base) (i32.const 24))))
      (call $g (i32.const 2) (i32.const 6) (i32.const 10) (i32.const 14)
        (i64.load (i32.add (local.get $base) (i32.const 32)))
        (i64.load (i32.add (local.get $base) (i32.const 40))))
      (call $g (i32.const 3) (i32.const 7) (i32.const 11) (i32.const 15)
        (i64.load (i32.add (local.get $base) (i32.const 48)))
        (i64.load (i32.add (local.get $base) (i32.const 56))))
      (call $g (i32.const 0) (i32.const 5) (i32.const 10) (i32.const 15)
        (i64.load (i32.add (local.get $base) (i32.const 64)))
        (i64.load (i32.add (local.get $base) (i32.const 72))))
      (call $g (i32.const 1) (i32.const 6) (i32.const 11) (i32.const 12)
        (i64.load (i32.add (local.get $base) (i32.const 80)))
        (i64.load (i32.add (local.get $base) (i32.const 88))))
      (call $g (i32.const 2) (i32.const 7) (i32.const 8) (i32.const 13)
        (i64.load (i32.add (local.get $base) (i32.const 96)))
        (i64.load (i32.add (local.get $base) (i32.const 104))))
      (call $g (i32.const 3) (i32.const 4) (i32.const 9) (i32.const 14)
        (i64.load (i32.add (local.get $base) (i32.const 112)))
        (i64.load (i32.add (local.get $base) (i32.const 120))))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l))))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $b i32) (local $acc i64)
    (call $init)
    (block $xr (loop $lr
      (br_if $xr (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $b (i32.const 0))
      (block $x (loop $l
        (br_if $x (i32.ge_s (local.get $b) (i32.const 4096)))
        (call $blockmix (local.get $b))
        (local.set $acc (i64.add (local.get $acc)
                                 (call $ldq (i32.const 0))))
        (local.set $b (i32.add (local.get $b) (i32.const 128)))
        (br $l)))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $lr)))
    (f64.convert_i64_s (local.get $acc)))
)WAT";

// Montgomery-ladder scalar multiplication over a reduced field
// (p = 2^31 - 1) so products fit in i64; 255 ladder steps.
const char* kScalarMult = R"WAT(
  (func $fmul (param $a i64) (param $b i64) (result i64)
    (i64.rem_u (i64.mul (local.get $a) (local.get $b))
               (i64.const 2147483647)))
  (func $fadd (param $a i64) (param $b i64) (result i64)
    (i64.rem_u (i64.add (local.get $a) (local.get $b))
               (i64.const 2147483647)))
  (func $fsub (param $a i64) (param $b i64) (result i64)
    (i64.rem_u (i64.add (i64.sub (local.get $a) (local.get $b))
                        (i64.const 2147483647))
               (i64.const 2147483647)))
  (func $ladder (param $k i64) (param $x1 i64) (result i64)
    (local $bit i32) (local $x2 i64) (local $z2 i64) (local $x3 i64)
    (local $z3 i64) (local $t1 i64) (local $t2 i64) (local $t3 i64)
    (local $t4 i64) (local $swap i64)
    (local.set $x2 (i64.const 1))
    (local.set $z2 (i64.const 0))
    (local.set $x3 (local.get $x1))
    (local.set $z3 (i64.const 1))
    (local.set $bit (i32.const 254))
    (block $x (loop $l
      (br_if $x (i32.lt_s (local.get $bit) (i32.const 0)))
      (local.set $swap
        (i64.and (i64.shr_u (local.get $k)
                   (i64.extend_i32_s
                     (i32.rem_s (local.get $bit) (i32.const 63))))
                 (i64.const 1)))
      ;; conditional swap (branchless, select)
      (local.set $t1 (select (local.get $x3) (local.get $x2)
                             (i32.wrap_i64 (local.get $swap))))
      (local.set $x3 (select (local.get $x2) (local.get $x3)
                             (i32.wrap_i64 (local.get $swap))))
      (local.set $x2 (local.get $t1))
      (local.set $t1 (select (local.get $z3) (local.get $z2)
                             (i32.wrap_i64 (local.get $swap))))
      (local.set $z3 (select (local.get $z2) (local.get $z3)
                             (i32.wrap_i64 (local.get $swap))))
      (local.set $z2 (local.get $t1))
      ;; ladder step
      (local.set $t1 (call $fadd (local.get $x2) (local.get $z2)))
      (local.set $t2 (call $fsub (local.get $x2) (local.get $z2)))
      (local.set $t3 (call $fadd (local.get $x3) (local.get $z3)))
      (local.set $t4 (call $fsub (local.get $x3) (local.get $z3)))
      (local.set $x2 (call $fmul (call $fmul (local.get $t1)
                                             (local.get $t1))
                           (call $fmul (local.get $t2) (local.get $t2))))
      (local.set $z2 (call $fmul (i64.const 121665)
        (call $fsub (call $fmul (local.get $t1) (local.get $t1))
                    (call $fmul (local.get $t2) (local.get $t2)))))
      (local.set $x3 (call $fmul (call $fmul (local.get $t1)
                                             (local.get $t4))
                           (call $fmul (local.get $t2) (local.get $t3))))
      (local.set $z3 (call $fmul (local.get $x1)
        (call $fsub (call $fmul (local.get $t1) (local.get $t4))
                    (call $fmul (local.get $t2) (local.get $t3)))))
      (local.set $z3 (call $fadd (local.get $z3) (i64.const 1)))
      (local.set $bit (i32.sub (local.get $bit) (i32.const 1)))
      (br $l)))
    (call $fadd (local.get $x2) (local.get $z2)))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $acc i64)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $acc (i64.add (local.get $acc)
        (call $ladder
          (i64.add (i64.const 0x417594a5f3c21e4)
                   (i64.extend_i32_s (local.get $r)))
          (i64.add (i64.const 9) (i64.extend_i32_s (local.get $r))))))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $l)))
    (f64.convert_i64_s (local.get $acc)))
)WAT";

// xorshift128 key generation filling a 16 KiB buffer.
const char* kKeygen = R"WAT(
  (global $s0 (mut i64) (i64.const 0x123456789abcdef))
  (global $s1 (mut i64) (i64.const 0xfedcba9876543210))
  (func $next (result i64)
    (local $a i64) (local $b i64)
    (local.set $a (global.get $s0))
    (local.set $b (global.get $s1))
    (global.set $s0 (local.get $b))
    (local.set $a (i64.xor (local.get $a)
                           (i64.shl (local.get $a) (i64.const 23))))
    (local.set $a (i64.xor (i64.xor (local.get $a) (local.get $b))
      (i64.xor (i64.shr_u (local.get $a) (i64.const 17))
               (i64.shr_u (local.get $b) (i64.const 26)))))
    (global.set $s1 (local.get $a))
    (i64.add (local.get $a) (local.get $b)))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $i i32) (local $acc i64)
    (global.set $s0 (i64.const 0x123456789abcdef))
    (global.set $s1 (i64.const 0xfedcba9876543210))
    (block $xr (loop $lr
      (br_if $xr (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $i (i32.const 0))
      (block $x (loop $l
        (br_if $x (i32.ge_s (local.get $i) (i32.const 16384)))
        (i64.store (local.get $i) (call $next))
        (local.set $i (i32.add (local.get $i) (i32.const 8)))
        (br $l)))
      (local.set $acc (i64.add (local.get $acc)
                               (i64.load (i32.const 64))))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $lr)))
    (f64.convert_i64_s (local.get $acc)))
)WAT";

// AEAD: ChaCha-style keystream XOR + Poly-style accumulate in one pass.
const char* kAead = R"WAT(
  (global $acc (mut i64) (i64.const 0))
  (func $ks (param $i i32) (result i32)
    ;; cheap per-word keystream derived from block function shape
    (local $x i32)
    (local.set $x (i32.mul (local.get $i) (i32.const 0x9e3779b9)))
    (local.set $x (i32.xor (local.get $x)
                           (i32.rotl (local.get $x) (i32.const 16))))
    (local.set $x (i32.add (local.get $x)
                           (i32.rotl (local.get $x) (i32.const 12))))
    (local.set $x (i32.xor (local.get $x)
                           (i32.rotl (local.get $x) (i32.const 8))))
    (i32.add (local.get $x) (i32.rotl (local.get $x) (i32.const 7))))
  (func $init
    (local $i i32)
    (block $x (loop $l
      (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
      (i32.store (local.get $i)
        (i32.mul (i32.add (local.get $i) (i32.const 13))
                 (i32.const 0x85ebca6b)))
      (local.set $i (i32.add (local.get $i) (i32.const 4)))
      (br $l))))
  (func (export "run") (param $n i32) (result f64)
    (local $r i32) (local $i i32) (local $c i32)
    (call $init)
    (global.set $acc (i64.const 0))
    (block $xr (loop $lr
      (br_if $xr (i32.ge_s (local.get $r) (local.get $n)))
      (local.set $i (i32.const 0))
      (block $x (loop $l
        (br_if $x (i32.ge_s (local.get $i) (i32.const 8192)))
        ;; encrypt word
        (local.set $c (i32.xor
          (i32.load (local.get $i))
          (call $ks (i32.add (local.get $i) (local.get $r)))))
        (i32.store (local.get $i) (local.get $c))
        ;; MAC accumulate (reduced modulus)
        (global.set $acc
          (i64.rem_u
            (i64.mul
              (i64.add (global.get $acc)
                (i64.and (i64.extend_i32_u (local.get $c))
                         (i64.const 0x7fffffff)))
              (i64.const 31337))
            (i64.const 2147483647)))
        (local.set $i (i32.add (local.get $i) (i32.const 4)))
        (br $l)))
      (local.set $r (i32.add (local.get $r) (i32.const 1)))
      (br $lr)))
    (f64.convert_i64_s (global.get $acc)))
)WAT";

} // namespace

void
registerLibsodium(std::vector<BenchProgram>* out)
{
    // Primitive modules registered under the suite's program names;
    // size variants (auth2/auth3/..., scalarmult2..7) differ in
    // repetition scale exactly as the libsodium benchmark does.
    auto add = [&](const char* name, const char* wat, uint32_t n) {
        out->push_back(make(name, wat, n));
    };
    add("chacha20", kChaCha, 32);
    add("stream", kStream, 16);
    add("stream3", kStream, 4);
    add("secretbox", kStream, 12);
    add("secretbox2", kStream, 6);
    add("secretbox_easy", kStream, 24);
    add("onetimeauth", kOnetimeAuth, 4);
    add("auth", kSha, 12);
    add("auth2", kSha, 4);
    add("auth3", kSha, 6);
    add("auth6", kSha, 8);
    add("hash", kSha, 16);
    add("hash3", kSha, 5);
    add("shorthash", kSipHash, 8);
    add("siphashx24", kSipHash, 10);
    add("generichash", kGenericHash, 8);
    add("generichash2", kGenericHash, 16);
    add("keygen", kKeygen, 12);
    add("randombytes", kKeygen, 24);
    add("kdf", kGenericHash, 12);
    add("scalarmult", kScalarMult, 48);
    add("scalarmult2", kScalarMult, 24);
    add("scalarmult5", kScalarMult, 56);
    add("scalarmult6", kScalarMult, 64);
    add("scalarmult7", kScalarMult, 72);
    add("box", kScalarMult, 40);
    add("box2", kScalarMult, 20);
    add("box_easy", kAead, 16);
    add("box_seal", kAead, 24);
    add("box_seed", kKeygen, 16);
    add("aead_chacha20poly1305", kAead, 20);
}

} // namespace wizpp
