/**
 * @file
 * LEB128 round-trip and malformed-input tests for support/leb128.h —
 * the encoding the binary module format and the trace subsystem both
 * depend on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "support/leb128.h"

using namespace wizpp;

namespace {

template <typename T>
std::vector<uint8_t>
encU(T v)
{
    std::vector<uint8_t> out;
    encodeULEB(out, v);
    return out;
}

template <typename T>
std::vector<uint8_t>
encS(T v)
{
    std::vector<uint8_t> out;
    encodeSLEB(out, v);
    return out;
}

} // namespace

TEST(Leb128, U32RoundTripBoundaries)
{
    const uint32_t cases[] = {0,       1,          63,        64,
                              127,     128,        255,       256,
                              16383,   16384,      624485,    0x7fffffffu,
                              0x80000000u, std::numeric_limits<uint32_t>::max()};
    for (uint32_t v : cases) {
        std::vector<uint8_t> b = encU(v);
        EXPECT_EQ(b.size(), sizeULEB(v)) << v;
        auto r = decodeULEB<uint32_t>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v);
        EXPECT_EQ(r.length, b.size());
    }
}

TEST(Leb128, U64RoundTripBoundaries)
{
    const uint64_t cases[] = {0,
                              127,
                              128,
                              (1ull << 32) - 1,
                              1ull << 32,
                              (1ull << 56) + 12345,
                              std::numeric_limits<uint64_t>::max()};
    for (uint64_t v : cases) {
        std::vector<uint8_t> b = encU(v);
        EXPECT_EQ(b.size(), sizeULEB(v)) << v;
        auto r = decodeULEB<uint64_t>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v);
        EXPECT_EQ(r.length, b.size());
    }
}

TEST(Leb128, S32RoundTripBoundaries)
{
    const int32_t cases[] = {0,    1,    -1,   63,   64,   -64,  -65,
                             127,  128,  -128, 8191, -8192,
                             std::numeric_limits<int32_t>::max(),
                             std::numeric_limits<int32_t>::min()};
    for (int32_t v : cases) {
        std::vector<uint8_t> b = encS(v);
        auto r = decodeSLEB<int32_t>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v);
        EXPECT_EQ(r.length, b.size());
    }
}

TEST(Leb128, S64RoundTripBoundaries)
{
    const int64_t cases[] = {0,
                             -1,
                             (1ll << 32),
                             -(1ll << 32) - 1,
                             std::numeric_limits<int64_t>::max(),
                             std::numeric_limits<int64_t>::min()};
    for (int64_t v : cases) {
        std::vector<uint8_t> b = encS(v);
        auto r = decodeSLEB<int64_t>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v);
        EXPECT_EQ(r.length, b.size());
    }
}

TEST(Leb128, S33RoundTripBoundaries)
{
    // s33 is the block-type encoding: a 33-bit signed value decoded
    // into an int64. Boundary values of the 33-bit range.
    const int64_t cases[] = {0,
                             -1,
                             (1ll << 32) - 1,   //  2^32-1 (max s33)
                             -(1ll << 32),      // -2^32   (min s33)
                             0x40,              // needs the sign-extend path
                             -0x41};
    for (int64_t v : cases) {
        std::vector<uint8_t> b = encS(v);
        auto r = decodeSLEB<int64_t, 33>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v) << v;
        EXPECT_EQ(r.length, b.size());
    }
}

TEST(Leb128, TruncatedInputFails)
{
    // A continuation bit with no following byte.
    const uint8_t bytes[] = {0x80};
    EXPECT_FALSE(decodeULEB<uint32_t>(bytes, bytes + 1).ok());
    EXPECT_FALSE(decodeSLEB<int32_t>(bytes, bytes + 1).ok());
    EXPECT_FALSE(decodeULEB<uint32_t>(bytes, bytes).ok());  // empty
}

TEST(Leb128, OverlongU32Fails)
{
    // Six continuation bytes exceed the 32-bit budget (ceil(32/7) = 5).
    const uint8_t bytes[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    EXPECT_FALSE(
        decodeULEB<uint32_t>(bytes, bytes + sizeof(bytes)).ok());
}

TEST(Leb128, U32FifthByteExcessBitsFail)
{
    // The 5th byte may only contribute 4 bits; 0x10 sets bit 32.
    const uint8_t bad[] = {0x80, 0x80, 0x80, 0x80, 0x10};
    EXPECT_FALSE(decodeULEB<uint32_t>(bad, bad + sizeof(bad)).ok());
    // 0x0f keeps the value inside 32 bits and must succeed.
    const uint8_t good[] = {0x80, 0x80, 0x80, 0x80, 0x0f};
    auto r = decodeULEB<uint32_t>(good, good + sizeof(good));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 0xf0000000u);
}

TEST(Leb128, PaddedU32MatchesCompactValue)
{
    const uint32_t cases[] = {0, 1, 624485,
                              std::numeric_limits<uint32_t>::max()};
    for (uint32_t v : cases) {
        std::vector<uint8_t> b;
        encodePaddedULEB32(b, v);
        ASSERT_EQ(b.size(), 5u);
        auto r = decodeULEB<uint32_t>(b.data(), b.data() + b.size());
        ASSERT_TRUE(r.ok()) << v;
        EXPECT_EQ(r.value, v);
        EXPECT_EQ(r.length, 5u);
    }
}

TEST(Leb128, DecodeStopsAtTerminatorNotBufferEnd)
{
    // Trailing garbage after a terminated value must not be consumed.
    std::vector<uint8_t> b = encU<uint32_t>(624485);
    size_t len = b.size();
    b.push_back(0xff);
    auto r = decodeULEB<uint32_t>(b.data(), b.data() + b.size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 624485u);
    EXPECT_EQ(r.length, len);
}
