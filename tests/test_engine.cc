/**
 * @file
 * Engine-level tests: tiering and OSR statistics, global-probe
 * interpreter-only mode transitions, resource limits, type checking at
 * the call boundary, and the after-instruction library.
 */

#include "monitors/entryexit.h"
#include "test_util.h"
#include "wasm/opcodes.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::run1;

const char* kLoopWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $i))
))";

TEST(EngineTiering, InterpreterModeNeverCompiles)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = makeEngine(kLoopWat, cfg);
    run1(*eng, "f", {Value::makeI32(100000)});
    EXPECT_EQ(eng->stats.functionsCompiled, 0u);
}

TEST(EngineTiering, JitModeCompilesEagerly)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, cfg);
    EXPECT_EQ(eng->stats.functionsCompiled, 1u);  // at instantiate
}

TEST(EngineTiering, TieredModeTiersUpOnCalls)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 5;
    cfg.osrAtLoopBackedge = false;
    auto eng = makeEngine(kLoopWat, cfg);
    // n = 0: no backedges, so only calls count toward the threshold.
    for (int i = 0; i < 4; i++) run1(*eng, "f", {Value::makeI32(0)});
    EXPECT_EQ(eng->stats.functionsCompiled, 0u);
    run1(*eng, "f", {Value::makeI32(0)});
    EXPECT_EQ(eng->stats.functionsCompiled, 1u);
}

TEST(EngineTiering, OsrCanBeDisabled)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 10;
    cfg.osrAtLoopBackedge = false;
    auto eng = makeEngine(kLoopWat, cfg);
    run1(*eng, "f", {Value::makeI32(100000)});
    EXPECT_EQ(eng->stats.osrEntries, 0u);

    EngineConfig cfg2 = cfg;
    cfg2.osrAtLoopBackedge = true;
    auto eng2 = makeEngine(kLoopWat, cfg2);
    run1(*eng2, "f", {Value::makeI32(100000)});
    EXPECT_EQ(eng2->stats.osrEntries, 1u);
}

TEST(EngineGlobalMode, EntersAndLeavesInterpreterOnly)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, cfg);
    auto p1 = std::make_shared<CountProbe>();
    auto p2 = std::make_shared<CountProbe>();
    eng->probes().insertGlobal(p1);
    EXPECT_TRUE(eng->interpreterOnly());
    uint64_t switches = eng->stats.dispatchTableSwitches;
    // A second global probe must not switch tables again.
    eng->probes().insertGlobal(p2);
    EXPECT_EQ(eng->stats.dispatchTableSwitches, switches);
    eng->probes().removeGlobal(p1.get());
    EXPECT_TRUE(eng->interpreterOnly());
    eng->probes().removeGlobal(p2.get());
    EXPECT_FALSE(eng->interpreterOnly());
    // Compiled code survived the excursion (no invalidations).
    EXPECT_EQ(eng->stats.jitInvalidations, 0u);
    run1(*eng, "f", {Value::makeI32(10)});
    EXPECT_EQ(p1->count + p2->count, 0u);
}

TEST(EngineLimits, DeepRecursionTrapsAsStackOverflow)
{
    const char* wat = R"((module
      (func $inf (export "inf") (param $n i32) (result i32)
        (call $inf (i32.add (local.get $n) (i32.const 1))))
    ))";
    for (ExecMode mode : {ExecMode::Interpreter, ExecMode::Jit}) {
        EngineConfig cfg;
        cfg.mode = mode;
        auto eng = makeEngine(wat, cfg);
        auto r = eng->callExport("inf", {Value::makeI32(0)});
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(eng->lastTrap(), TrapReason::StackOverflow);
    }
}

TEST(EngineLimits, MemoryGrowRespectsLimits)
{
    auto eng = makeEngine(R"((module
      (memory 1 3)
      (func (export "grow") (param $d i32) (result i32)
        (memory.grow (local.get $d)))
      (func (export "size") (result i32) (memory.size))
    ))");
    EXPECT_EQ(run1(*eng, "size").i32(), 1u);
    EXPECT_EQ(run1(*eng, "grow", {Value::makeI32(2)}).i32s(), 1);
    EXPECT_EQ(run1(*eng, "size").i32(), 3u);
    // Past the declared max: grow fails with -1.
    EXPECT_EQ(run1(*eng, "grow", {Value::makeI32(1)}).i32s(), -1);
    EXPECT_EQ(run1(*eng, "size").i32(), 3u);
}

TEST(EngineCalls, ArgumentTypeAndArityChecking)
{
    auto eng = makeEngine(kLoopWat);
    EXPECT_FALSE(eng->callExport("f", {}).ok());
    EXPECT_FALSE(eng->callExport("f", {Value::makeI64(int64_t{1})}).ok());
    EXPECT_FALSE(eng->callExport("nope", {Value::makeI32(1)}).ok());
    EXPECT_TRUE(eng->callExport("f", {Value::makeI32(1)}).ok());
}

TEST(EngineCalls, CanonicalTypesMatchAcrossDuplicates)
{
    // call_indirect through a *structurally equal* duplicate type must
    // pass the signature check (canonicalization).
    auto eng = makeEngine(R"((module
      (type $t1 (func (param i32) (result i32)))
      (type $t2 (func (param i32) (result i32)))
      (table 1 funcref)
      (elem (i32.const 0) $id)
      (func $id (type $t1) (local.get 0))
      (func (export "f") (param $x i32) (result i32)
        (call_indirect (type $t2) (local.get $x) (i32.const 0)))
    ))");
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(9)}).i32(), 9u);
}

TEST(EngineCalls, HostTrapPropagates)
{
    EngineConfig cfg;
    auto eng = std::make_unique<Engine>(cfg);
    HostFunc hf;
    hf.type.params = {};
    hf.fn = [](const std::vector<Value>&, std::vector<Value>*) {
        return TrapReason::HostError;
    };
    eng->imports().addFunc("env", "die", hf);
    auto lr = eng->loadModule(test::mustParse(R"((module
      (import "env" "die" (func $die))
      (func (export "f") (call $die))
    ))"));
    ASSERT_TRUE(lr.ok());
    ASSERT_TRUE(eng->instantiate().ok());
    auto r = eng->callExport("f", {});
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::HostError);
}

TEST(AfterInstruction, LibraryFiresExactlyOnceAfterward)
{
    auto eng = makeEngine(kLoopWat);
    FuncState& fs = eng->funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[2];
    std::vector<uint32_t> afterPcs;
    bool armed = false;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        if (armed) return;
        armed = true;
        runAfterCurrentInstruction(ctx.engine(),
            [&afterPcs](ProbeContext& c2) {
                afterPcs.push_back(c2.pc());
            });
    }));
    run1(*eng, "f", {Value::makeI32(50)});
    ASSERT_EQ(afterPcs.size(), 1u);
    EXPECT_NE(afterPcs[0], pc);
    EXPECT_FALSE(eng->interpreterOnly());
}

TEST(EngineReuse, ManySequentialCallsAreStable)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 3;
    auto eng = makeEngine(kLoopWat, cfg);
    for (uint32_t i = 0; i < 200; i++) {
        EXPECT_EQ(run1(*eng, "f", {Value::makeI32(i)}).i32(), i);
    }
}

} // namespace
} // namespace wizpp
