/**
 * @file
 * Static-analysis tests: the dynamic-oracle differential gate (static
 * per-pc stack-depth/type facts vs FrameAccessor-observed depths via a
 * one-shot probe sweep, across the whole benchmark corpus), validator
 * stack-polymorphism corner cases checked through the same gate, the
 * taint/leak analysis on a known-leaky module, and the probe-lowering
 * audit (including the deliberately mis-declared FrameAccess probe it
 * must reject). A divergence or depth mismatch anywhere is a bug in
 * the analysis *or* the validator, so this suite doubles as a
 * validator oracle (docs/ANALYSIS.md).
 */

#include <cctype>
#include <memory>

#include "analysis/analysis.h"
#include "analysis/audit.h"
#include "analysis/taint.h"
#include "monitors/monitors.h"
#include "probes/frameaccessor.h"
#include "suites/suites.h"
#include "test_util.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace wizpp {
namespace {

using test::run1;

// ---------------------------------------------------------------------
// The differential harness
// ---------------------------------------------------------------------

struct DiffOutcome
{
    uint64_t fired = 0;
    std::vector<std::string> mismatches;
};

/**
 * Runs the differential depth check: analyze the module statically,
 * plant a one-shot self-removing probe at every instruction boundary,
 * execute @p argSets against @p entry, and compare each probe's
 * FrameAccessor view (operand depth + top-of-stack type) with the
 * static facts at its pc.
 */
DiffOutcome
runDifferential(const std::string& wat, const std::string& entry,
                const std::vector<std::vector<Value>>& argSets)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = test::makeEngine(wat, cfg);

    auto ar = analysis::Analysis::build(eng->module());
    EXPECT_TRUE(ar.ok()) << (ar.ok() ? "" : ar.error().toString());
    auto an = std::make_shared<analysis::Analysis>(ar.take());

    auto out = std::make_shared<DiffOutcome>();
    for (uint32_t i = 0; i < an->numFuncs(); i++) {
        for (const std::string& d : an->func(i).divergences) {
            out->mismatches.push_back("divergence: " + d);
        }
    }

    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t f = 0; f < eng->numFuncs(); f++) {
        FuncState& fs = eng->funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            batch.push_back({f, pc, makeProbe([out, an](
                                        ProbeContext& ctx) {
                out->fired++;
                auto report = [&](const std::string& msg) {
                    if (out->mismatches.size() < 32) {
                        out->mismatches.push_back(
                            "func #" + std::to_string(ctx.funcIndex()) +
                            " +" + std::to_string(ctx.pc()) + ": " +
                            msg);
                    }
                };
                const analysis::InstrFacts* fa =
                    an->factsAt(ctx.funcIndex(), ctx.pc());
                auto acc = ctx.accessor();
                if (!fa) {
                    report("probe fired at a pc with no static facts");
                } else if (!fa->reachable) {
                    report("probe fired at a statically-unreachable pc");
                } else if (acc->numOperands() != fa->depth()) {
                    report("dynamic depth " +
                           std::to_string(acc->numOperands()) +
                           " != static depth " +
                           std::to_string(fa->depth()));
                } else if (fa->depth() > 0 &&
                           fa->stack.back().type !=
                               analysis::AbsType::Any) {
                    Value top = acc->getOperand(0);
                    if (analysis::absTypeOf(top.type) !=
                        fa->stack.back().type) {
                        report(std::string("dynamic top type ") +
                               valTypeName(top.type) +
                               " != static top type " +
                               analysis::absTypeName(
                                   fa->stack.back().type));
                    }
                }
                ctx.removeSelf();  // one observation per pc suffices
            })});
        }
    }
    eng->probes().insertBatch(batch);

    for (const auto& args : argSets) {
        auto r = eng->callExport(entry, args);
        EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    }
    return *out;
}

// ---------------------------------------------------------------------
// Corpus-wide differential gate (the dynamic oracle)
// ---------------------------------------------------------------------

class AnalysisDifferential
    : public ::testing::TestWithParam<const BenchProgram*>
{
};

TEST_P(AnalysisDifferential, StaticFactsMatchDynamicDepths)
{
    const BenchProgram& p = *GetParam();
    DiffOutcome out =
        runDifferential(p.wat, p.entry, {{Value::makeI32(1)}});
    EXPECT_GT(out.fired, 0u) << p.name << ": no probes fired";
    EXPECT_TRUE(out.mismatches.empty())
        << p.name << ": " << out.mismatches.size() << " mismatch(es), "
        << "first: " << out.mismatches.front();
}

std::vector<const BenchProgram*>
allProgramPointers()
{
    std::vector<const BenchProgram*> out;
    for (const auto& p : allPrograms()) out.push_back(&p);
    out.push_back(&richardsProgram());
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AnalysisDifferential,
    ::testing::ValuesIn(allProgramPointers()),
    [](const ::testing::TestParamInfo<const BenchProgram*>& info) {
        std::string n = info.param->suite + "_" + info.param->name;
        for (char& c : n) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return n;
    });

// ---------------------------------------------------------------------
// Corpus-wide static decode walk (instrLength edge-case audit)
// ---------------------------------------------------------------------

TEST_P(AnalysisDifferential, DecodeWalkMatchesSideTable)
{
    const BenchProgram& p = *GetParam();
    Module m = test::mustParse(p.wat);
    auto vr = validateModule(m);
    ASSERT_TRUE(vr.ok()) << vr.error().toString();
    for (uint32_t i = 0; i < m.functions.size(); i++) {
        const FuncDecl& f = m.functions[i];
        if (f.imported) continue;
        const SideTable& st = vr.value().sideTables[i];
        std::vector<uint32_t> walked;
        size_t pc = 0;
        while (pc < f.code.size()) {
            size_t len = instrLength(f.code, pc);
            ASSERT_GT(len, 0u)
                << p.name << " func #" << i << " +" << pc
                << ": validated code failed to decode";
            walked.push_back(static_cast<uint32_t>(pc));
            pc += len;
        }
        EXPECT_EQ(pc, f.code.size()) << p.name << " func #" << i;
        EXPECT_EQ(walked, st.instrBoundaries)
            << p.name << " func #" << i;
    }
}

// ---------------------------------------------------------------------
// Validator stack-polymorphism corners, via the differential gate
// ---------------------------------------------------------------------

TEST(AnalysisCorners, DeadCodeAfterBranchTyping)
{
    // Unreachable code after `br` type-checks polymorphically; the
    // static pass must mark those pcs unreachable and the executed
    // path must still match the facts.
    // After the br the stack is polymorphic: i32.add pops two
    // bottom-typed values and its concrete i32 result is dropped
    // before the (dead) fallthrough block result.
    const char* wat = R"((module
      (func (export "run") (param i32) (result f64)
        (block (result f64)
          (f64.const 1)
          (br 0)
          (i32.add)
          (drop)
          (f64.const 2)))))";
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = test::makeEngine(wat, cfg);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(0)}).f64(), 1.0);

    auto ar = analysis::Analysis::build(eng->module());
    ASSERT_TRUE(ar.ok());
    const analysis::FuncFacts& ff = ar.value().func(0);
    EXPECT_TRUE(ff.divergences.empty());
    // The dead i32.add (opcode 0x6a) must be statically unreachable.
    const FuncDecl& f = eng->module().functions[0];
    bool sawDead = false;
    for (uint32_t pc : ff.pcs) {
        if (f.code[pc] == 0x6a) {
            const analysis::InstrFacts* fa = ff.at(pc);
            ASSERT_NE(fa, nullptr);
            EXPECT_FALSE(fa->reachable);
            sawDead = true;
        }
    }
    EXPECT_TRUE(sawDead);

    DiffOutcome out =
        runDifferential(wat, "run", {{Value::makeI32(0)}});
    EXPECT_GT(out.fired, 0u);
    EXPECT_TRUE(out.mismatches.empty())
        << "first: " << out.mismatches.front();
}

TEST(AnalysisCorners, BrTableArmArityCarriesValue)
{
    // Every br_table arm (including the default) carries the f64
    // block result; the two targets unwind to different heights.
    const char* wat = R"((module
      (func (export "run") (param i32) (result f64)
        (block $outer (result f64)
          (block $inner (result f64)
            (f64.const 10)
            (local.get 0)
            (br_table $inner $outer $inner))
          (f64.const 1)
          (f64.add)))))";
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = test::makeEngine(wat, cfg);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(0)}).f64(), 11.0);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(1)}).f64(), 10.0);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(2)}).f64(), 11.0);

    DiffOutcome out = runDifferential(
        wat, "run",
        {{Value::makeI32(0)}, {Value::makeI32(1)}, {Value::makeI32(2)}});
    EXPECT_GT(out.fired, 0u);
    EXPECT_TRUE(out.mismatches.empty())
        << "first: " << out.mismatches.front();
}

TEST(AnalysisCorners, BrIfToFunctionLabel)
{
    // A conditional exit targeting the function label: the branch
    // carries the f64 result to the final `end`, whose in-state must
    // merge the branch edge with the fallthrough path.
    const char* wat = R"((module
      (func (export "run") (param i32) (result f64)
        (f64.const 2)
        (local.get 0)
        (br_if 0)
        (drop)
        (f64.const 3))))";
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = test::makeEngine(wat, cfg);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(1)}).f64(), 2.0);
    EXPECT_EQ(run1(*eng, "run", {Value::makeI32(0)}).f64(), 3.0);

    auto ar = analysis::Analysis::build(eng->module());
    ASSERT_TRUE(ar.ok());
    const analysis::FuncFacts& ff = ar.value().func(0);
    // At the br_if the stack is [f64 result, i32 condition].
    const FuncDecl& f = eng->module().functions[0];
    for (uint32_t pc : ff.pcs) {
        if (f.code[pc] == 0x0d) {  // br_if
            const analysis::InstrFacts* fa = ff.at(pc);
            ASSERT_NE(fa, nullptr);
            EXPECT_TRUE(fa->reachable);
            EXPECT_EQ(fa->depth(), 2u);
        }
    }

    DiffOutcome out = runDifferential(
        wat, "run", {{Value::makeI32(1)}, {Value::makeI32(0)}});
    EXPECT_GT(out.fired, 0u);
    EXPECT_TRUE(out.mismatches.empty())
        << "first: " << out.mismatches.front();
}

// ---------------------------------------------------------------------
// Taint/address-leak analysis
// ---------------------------------------------------------------------

// Kept in sync with tests/fixtures/leaky.wat (the --analyze=leaks
// smoke ctest runs the file; this test checks the findings' shape).
const char* kLeakyWat = R"((module
  (import "env" "sink" (func $sink (param i32)))
  (memory 1)
  (func (export "leak") (param $n i32) (result i32)
    (local $base i32)
    (local.set $base (memory.grow (local.get $n)))
    (i32.store (i32.const 0) (local.get $base))
    (call $sink (local.get $base))
    (local.get $base))
  (func (export "clean") (param $n i32) (result i32)
    (i32.add (local.get $n) (i32.const 1)))))";

TEST(AnalysisTaint, LeakyModuleReportsAllThreeSinkKinds)
{
    Module m = test::mustParse(kLeakyWat);
    auto ar = analysis::Analysis::build(m);
    ASSERT_TRUE(ar.ok()) << ar.error().toString();
    analysis::TaintReport rep = analysis::analyzeTaint(m, ar.value());

    EXPECT_EQ(rep.definiteCount, 3u);
    ASSERT_EQ(rep.findings.size(), 3u);
    EXPECT_EQ(rep.findings[0].sink, analysis::SinkKind::StoreValue);
    EXPECT_EQ(rep.findings[1].sink, analysis::SinkKind::HostCallArg);
    EXPECT_EQ(rep.findings[2].sink, analysis::SinkKind::ReturnValue);
    for (const auto& f : rep.findings) {
        EXPECT_TRUE(f.definite);
        EXPECT_EQ(f.funcIndex, 1u);  // the imported sink is func #0
        EXPECT_EQ(f.origin, analysis::Origin::MemGrow);
        EXPECT_NE(f.message.find("memory.grow"), std::string::npos);
    }
}

TEST(AnalysisTaint, CleanCorpusProgramsHaveNoDefiniteLeaks)
{
    for (const char* name : {"gemm", "trisolv", "atax"}) {
        const BenchProgram* p = findProgram(name);
        ASSERT_NE(p, nullptr) << name;
        Module m = test::mustParse(p->wat);
        auto ar = analysis::Analysis::build(m);
        ASSERT_TRUE(ar.ok()) << name;
        analysis::TaintReport rep =
            analysis::analyzeTaint(m, ar.value());
        EXPECT_EQ(rep.definiteCount, 0u) << name;
    }
}

TEST(AnalysisTaint, PointerLikeLocalsAreInferred)
{
    // The corpus is memory-heavy: @gemm indexes linear memory through
    // locals, so at least one function must have a non-empty
    // pointer-like local set.
    const BenchProgram* p = findProgram("gemm");
    ASSERT_NE(p, nullptr);
    Module m = test::mustParse(p->wat);
    auto ar = analysis::Analysis::build(m);
    ASSERT_TRUE(ar.ok());
    bool any = false;
    for (uint32_t i = 0; i < ar.value().numFuncs(); i++) {
        if (ar.value().func(i).pointerLocals != 0) any = true;
    }
    EXPECT_TRUE(any);
}

// ---------------------------------------------------------------------
// Probe-lowering audit
// ---------------------------------------------------------------------

/** Deliberately mis-declared: claims Operand access at any site. */
class MisdeclaredProbe : public EntryExitProbe
{
  public:
    bool needsTopOfStack() const override { return true; }
    void fireActivation(const Activation&) override {}
};

TEST(AnalysisAudit, RejectsMisdeclaredFrameAccess)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = std::make_unique<Engine>(cfg);
    ASSERT_TRUE(eng->loadModule(test::mustParse(kLeakyWat)).ok());
    FuncType sinkType;
    sinkType.params = {ValType::I32};
    eng->imports().addFunc("env", "sink",
                           {sinkType, [](const std::vector<Value>&,
                                         std::vector<Value>*) {
                                return TrapReason::None;
                            }});
    ASSERT_TRUE(eng->instantiate().ok());
    // Function entry (+0) has a statically-empty operand stack, so an
    // Operand-access probe there is mis-declared by construction.
    std::vector<ProbeManager::SiteProbe> batch;
    batch.push_back({1, 0, std::make_shared<MisdeclaredProbe>()});
    ASSERT_EQ(eng->probes().insertBatch(batch), 1u);
#ifndef NDEBUG
    // Debug builds flag the batch at insertion time too.
    EXPECT_EQ(eng->probes().auditWarnings, 1u);
#endif

    analysis::AuditResult res = analysis::auditProbeLowering(*eng);
    ASSERT_EQ(res.violations.size(), 1u);
    EXPECT_EQ(res.violations[0].funcIndex, 1u);
    EXPECT_EQ(res.violations[0].pc, 0u);
    EXPECT_NE(res.violations[0].message.find("mis-declared FrameAccess"),
              std::string::npos);
}

TEST(AnalysisAudit, RealMonitorsPassClean)
{
    // Real monitors declare their access correctly; with the eager
    // compiled tier their recorded lowering kinds must also agree
    // with re-running lowerProbeSite (no drift).
    const BenchProgram* p = findProgram("gemm");
    ASSERT_NE(p, nullptr);
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = std::make_unique<Engine>(cfg);
    ASSERT_TRUE(eng->loadModule(test::mustParse(p->wat)).ok());
    auto hotness = createMonitor("hotness", std::cout);
    auto branches = createMonitor("branches", std::cout);
    ASSERT_NE(hotness, nullptr);
    ASSERT_NE(branches, nullptr);
    eng->attachMonitor(hotness.get());
    eng->attachMonitor(branches.get());
    ASSERT_TRUE(eng->instantiate().ok());

    analysis::AuditResult res = analysis::auditProbeLowering(*eng);
    EXPECT_GT(res.sitesAudited, 0u);
    EXPECT_TRUE(res.violations.empty())
        << "first: " << res.violations.front().message;
}

// ---------------------------------------------------------------------
// Facts API basics
// ---------------------------------------------------------------------

TEST(AnalysisFacts, ImportsAndBoundsAreNull)
{
    Module m = test::mustParse(kLeakyWat);
    auto ar = analysis::Analysis::build(m);
    ASSERT_TRUE(ar.ok());
    const analysis::Analysis& an = ar.value();
    EXPECT_EQ(an.numFuncs(), 3u);
    EXPECT_FALSE(an.func(0).analyzed);        // the import
    EXPECT_EQ(an.factsAt(0, 0), nullptr);     // no facts for imports
    EXPECT_EQ(an.factsAt(99, 0), nullptr);    // out of range
    EXPECT_EQ(an.factsAt(1, 1), nullptr);     // not a boundary
    ASSERT_NE(an.factsAt(1, 0), nullptr);
    EXPECT_TRUE(an.factsAt(1, 0)->reachable);
    EXPECT_EQ(an.factsAt(1, 0)->depth(), 0u);
}

TEST(AnalysisFacts, ProvenanceSurvivesLocalRoundTrip)
{
    // memory.grow -> local.set -> local.get keeps origin and taint.
    Module m = test::mustParse(kLeakyWat);
    auto ar = analysis::Analysis::build(m);
    ASSERT_TRUE(ar.ok());
    const analysis::FuncFacts& ff = ar.value().func(1);
    const FuncDecl& f = m.functions[1];
    // Find the i32.store (0x36): its value slot is the reloaded base.
    for (uint32_t pc : ff.pcs) {
        if (f.code[pc] != 0x36) continue;
        const analysis::InstrFacts* fa = ff.at(pc);
        ASSERT_NE(fa, nullptr);
        ASSERT_GE(fa->depth(), 2u);
        const analysis::AbstractValue& v = fa->stack.back();
        EXPECT_EQ(v.origin, analysis::Origin::MemGrow);
        EXPECT_EQ(v.taint & analysis::kTaintMemGrow,
                  analysis::kTaintMemGrow);
        EXPECT_EQ(v.type, analysis::AbsType::I32);
    }
}

} // namespace
} // namespace wizpp
