/**
 * @file
 * Probe framework tests: bytecode overwriting, dispatch-table
 * switching, the Section 2.4 consistency guarantees, intrinsification
 * correctness, jit invalidation and frame deoptimization.
 */

#include "test_util.h"

#include "probes/frameaccessor.h"
#include "wasm/opcodes.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::run1;

/** A counting loop: the probed instruction executes exactly n times. */
const char* kLoopWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc) (i32.const 3)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $acc))
))";

/** Finds the pc of the k-th occurrence of an opcode in a function. */
uint32_t
findOpcode(Engine& eng, uint32_t func, uint8_t opcode, int k = 0)
{
    FuncState& fs = eng.funcState(func);
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        if (fs.decl->code[pc] == opcode && k-- == 0) return pc;
    }
    ADD_FAILURE() << "opcode not found";
    return 0;
}

class ProbeModes : public ::testing::TestWithParam<ExecMode>
{
  protected:
    EngineConfig
    cfg() const
    {
        EngineConfig c;
        c.mode = GetParam();
        c.tierUpThreshold = 2;
        return c;
    }
};

TEST_P(ProbeModes, CountProbeFiresExactly)
{
    auto eng = makeEngine(kLoopWat, cfg());
    // Probe the loop-body constant: executes once per iteration.
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto probe = std::make_shared<CountProbe>();
    ASSERT_TRUE(eng->probes().insertLocal(0, pc, probe));
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(100)}).i32(), 300u);
    EXPECT_EQ(probe->count, 100u);
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(50)}).i32(), 150u);
    EXPECT_EQ(probe->count, 150u);
}

TEST_P(ProbeModes, BytecodeOverwriting)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    FuncState& fs = eng->funcState(0);
    uint8_t orig = fs.code[pc];
    EXPECT_NE(orig, OP_PROBE);

    auto probe = std::make_shared<CountProbe>();
    eng->probes().insertLocal(0, pc, probe);
    // The engine's mutable copy is overwritten; the pristine module
    // bytes are not (non-intrusiveness even for self-reading code).
    EXPECT_EQ(fs.code[pc], OP_PROBE);
    EXPECT_EQ(fs.decl->code[pc], orig);
    EXPECT_EQ(eng->probes().originalByte(0, pc), orig);

    // Removal restores the byte (O(1), probe-granular — unlike Pin's
    // region-level clearing).
    eng->probes().removeLocal(0, pc, probe.get());
    EXPECT_EQ(fs.code[pc], orig);
    EXPECT_EQ(eng->probes().numProbedSites(), 0u);
}

TEST_P(ProbeModes, InsertionOrderIsFiringOrder)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    std::vector<int> order;
    for (int id = 0; id < 4; id++) {
        eng->probes().insertLocal(0, pc, makeProbe(
            [&order, id](ProbeContext&) { order.push_back(id); }));
    }
    run1(*eng, "f", {Value::makeI32(2)});
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; i++) EXPECT_EQ(order[i], i % 4);
}

TEST_P(ProbeModes, DeferredInsertOnSameEvent)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto q = std::make_shared<CountProbe>();
    bool inserted = false;
    eng->probes().insertLocal(0, pc, makeProbe(
        [&](ProbeContext& ctx) {
            if (!inserted) {
                inserted = true;
                ctx.engine().probes().insertLocal(0, pc, q);
            }
        }));
    run1(*eng, "f", {Value::makeI32(10)});
    // q was inserted during occurrence #1 of the event and must not
    // fire until occurrence #2: exactly 9 fires.
    EXPECT_EQ(q->count, 9u);
}

TEST_P(ProbeModes, DeferredRemovalOnSameEvent)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto q = std::make_shared<CountProbe>();
    bool removed = false;
    // p fires before q (insertion order) and removes q on the first
    // occurrence; q must still fire on that occurrence.
    eng->probes().insertLocal(0, pc, makeProbe(
        [&](ProbeContext& ctx) {
            if (!removed) {
                removed = true;
                ctx.engine().probes().removeLocal(0, pc, q.get());
            }
        }));
    eng->probes().insertLocal(0, pc, q);
    run1(*eng, "f", {Value::makeI32(10)});
    EXPECT_EQ(q->count, 1u);
}

TEST_P(ProbeModes, SelfRemovingProbe)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto holder = std::make_shared<std::shared_ptr<Probe>>();
    uint64_t fires = 0;
    auto probe = makeProbe([&, holder](ProbeContext& ctx) {
        fires++;
        ctx.engine().probes().removeLocal(0, pc, holder->get());
        // Break the probe->lambda->holder->probe ownership cycle.
        holder->reset();
    });
    *holder = probe;
    eng->probes().insertLocal(0, pc, probe);
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(100)}).i32(), 300u);
    EXPECT_EQ(fires, 1u);
    EXPECT_EQ(eng->probes().numProbedSites(), 0u);
}

TEST_P(ProbeModes, GlobalProbeCountsEveryInstruction)
{
    auto eng = makeEngine(kLoopWat, cfg());
    auto probe = std::make_shared<CountProbe>();
    eng->probes().insertGlobal(probe);
    EXPECT_TRUE(eng->interpreterOnly());
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 30u);
    // Loop body: br_if+2 operands, 2 local.set groups (3 each),
    // br = 10 per iteration; plus prologue/epilogue.
    uint64_t perIter = 10;
    EXPECT_GE(probe->count, perIter * 10);
    uint64_t after = probe->count;

    // Removing the global probe switches back to the normal dispatch
    // table: zero further fires.
    eng->probes().removeGlobal(probe.get());
    EXPECT_FALSE(eng->interpreterOnly());
    run1(*eng, "f", {Value::makeI32(10)});
    EXPECT_EQ(probe->count, after);
    EXPECT_GE(eng->stats.dispatchTableSwitches, 2u);
}

TEST_P(ProbeModes, GlobalAndLocalProbesCompose)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    std::vector<char> order;
    eng->probes().insertGlobal(makeProbe([&](ProbeContext& ctx) {
        if (ctx.pc() == pc) order.push_back('g');
    }));
    eng->probes().insertLocal(0, pc, makeProbe(
        [&](ProbeContext&) { order.push_back('l'); }));
    run1(*eng, "f", {Value::makeI32(3)});
    // Global probes fire before local probes at the same instruction.
    ASSERT_EQ(order.size(), 6u);
    for (size_t i = 0; i < order.size(); i += 2) {
        EXPECT_EQ(order[i], 'g');
        EXPECT_EQ(order[i + 1], 'l');
    }
}

TEST_P(ProbeModes, OneShotGlobalProbe)
{
    // The "after-instruction" building block (Section 2.6, strategy 3):
    // insert a global probe, fire once, remove.
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    uint64_t afterFires = 0;
    uint32_t afterPc = 0;
    bool armed = false;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        if (armed) return;
        armed = true;
        auto holder = std::make_shared<std::shared_ptr<Probe>>();
        auto g = makeProbe([&, holder](ProbeContext& c2) {
            afterFires++;
            afterPc = c2.pc();
            c2.engine().probes().removeGlobal(holder->get());
            holder->reset();
        });
        *holder = g;
        ctx.engine().probes().insertGlobal(g);
    }));
    run1(*eng, "f", {Value::makeI32(20)});
    EXPECT_EQ(afterFires, 1u);
    // It fired at the instruction *after* the probed one (the probed
    // instruction itself: global probes inserted during its local probe
    // firing take effect at the next dispatch, i.e. the next
    // instruction).
    EXPECT_NE(afterPc, pc);
    EXPECT_FALSE(eng->interpreterOnly());
}

// ---- FrameAccessor ----

const char* kCallWat = R"((module
  (func $callee (param $x i32) (result i32)
    (i32.add (local.get $x) (i32.const 1)))
  (func (export "f") (param $a i32) (result i32)
    (local $l i32)
    (local.set $l (i32.const 77))
    (call $callee (i32.mul (local.get $a) (i32.const 2))))
))";

TEST_P(ProbeModes, AccessorReadsLocalsAndOperands)
{
    auto eng = makeEngine(kCallWat, cfg());
    // Probe the i32.add in the callee: operand stack holds [x, 1].
    uint32_t pc = findOpcode(*eng, 0, OP_I32_ADD);
    bool checked = false;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        auto acc = ctx.accessor();
        ASSERT_TRUE(acc->valid());
        EXPECT_EQ(acc->numLocals(), 1u);
        EXPECT_EQ(acc->getLocal(0).i32(), 10u);
        EXPECT_EQ(acc->numOperands(), 2u);
        EXPECT_EQ(acc->getOperand(0).i32(), 1u);   // top: the constant
        EXPECT_EQ(acc->getOperand(1).i32(), 10u);  // below: x
        EXPECT_EQ(acc->pc(), pc);
        checked = true;
    }));
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(5)}).i32(), 11u);
    EXPECT_TRUE(checked);
}

TEST_P(ProbeModes, AccessorWalksCallers)
{
    auto eng = makeEngine(kCallWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_ADD);
    bool checked = false;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        auto acc = ctx.accessor();
        EXPECT_EQ(acc->depth(), 1u);
        auto caller = acc->caller();
        ASSERT_NE(caller, nullptr);
        EXPECT_EQ(caller->func()->funcIndex, 1u);
        EXPECT_EQ(caller->getLocal(1).i32(), 77u);  // $l
        EXPECT_EQ(caller->caller(), nullptr);       // stack bottom
        checked = true;
    }));
    run1(*eng, "f", {Value::makeI32(5)});
    EXPECT_TRUE(checked);
}

TEST_P(ProbeModes, AccessorIdentityIsStablePerActivation)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    std::set<const FrameAccessor*> seen;
    std::set<uint64_t> frameIds;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        seen.insert(ctx.accessor().get());
        frameIds.insert(ctx.accessor()->frameId());
    }));
    run1(*eng, "f", {Value::makeI32(10)});
    // One activation: a single accessor object across all callbacks
    // (the paper: identity is observable for cross-callback analyses).
    EXPECT_EQ(seen.size(), 1u);
    EXPECT_EQ(frameIds.size(), 1u);
    run1(*eng, "f", {Value::makeI32(10)});
    // A second activation gets a fresh identity.
    EXPECT_EQ(frameIds.size(), 2u);
}

TEST_P(ProbeModes, DanglingAccessorIsInvalidated)
{
    auto eng = makeEngine(kCallWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_ADD);
    std::shared_ptr<FrameAccessor> leaked;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        leaked = ctx.accessor();  // monitor keeps it across callbacks
    }));
    run1(*eng, "f", {Value::makeI32(5)});
    ASSERT_NE(leaked, nullptr);
    // The frame was unwound; the accessor must be dead and safe.
    EXPECT_FALSE(leaked->valid());
    EXPECT_EQ(leaked->getLocal(0), Value{});
    EXPECT_TRUE(leaked->misuseDetected());
    EXPECT_FALSE(leaked->setLocal(0, Value::makeI32(1)));
}

TEST_P(ProbeModes, FrameModificationTakesEffectImmediately)
{
    auto eng = makeEngine(kCallWat, cfg());
    // Probe the callee's first instruction and overwrite its argument:
    // the paper's fix-and-continue scenario.
    uint32_t pc = findOpcode(*eng, 0, OP_LOCAL_GET);
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        ASSERT_TRUE(ctx.accessor()->setLocal(0, Value::makeI32(41)));
    }));
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(5)}).i32(), 42u);
    if (GetParam() == ExecMode::Jit) {
        // The modified frame was deoptimized to the interpreter.
        EXPECT_GE(eng->stats.frameDeopts, 1u);
    }
}

TEST_P(ProbeModes, OperandModificationTakesEffectImmediately)
{
    auto eng = makeEngine(kCallWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_ADD);
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        // Replace the top operand (the +1 constant) with +100.
        ASSERT_TRUE(ctx.accessor()->setOperand(0, Value::makeI32(100)));
    }));
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(5)}).i32(), 110u);
}

// ---- JIT interaction ----

TEST(ProbeJit, IntrinsifiedCountMatchesGeneric)
{
    for (bool intrinsify : {false, true}) {
        EngineConfig c;
        c.mode = ExecMode::Jit;
        c.intrinsifyCountProbe = intrinsify;
        auto eng = makeEngine(kLoopWat, c);
        uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
        auto probe = std::make_shared<CountProbe>();
        eng->probes().insertLocal(0, pc, probe);
        EXPECT_EQ(run1(*eng, "f", {Value::makeI32(1000)}).i32(), 3000u);
        EXPECT_EQ(probe->count, 1000u) << "intrinsify=" << intrinsify;
        EXPECT_GE(eng->stats.functionsCompiled, 1u);
    }
}

class RecordingOperandProbe : public OperandProbe
{
  public:
    void fireOperand(Value v) override { values.push_back(v); }
    std::vector<Value> values;
};

TEST(ProbeJit, IntrinsifiedOperandProbeSeesTopOfStack)
{
    for (bool intrinsify : {false, true}) {
        EngineConfig c;
        c.mode = ExecMode::Jit;
        c.intrinsifyOperandProbe = intrinsify;
        auto eng = makeEngine(kLoopWat, c);
        // Probe the br_if: top-of-stack is the loop-exit condition.
        uint32_t pc = findOpcode(*eng, 0, OP_BR_IF);
        auto probe = std::make_shared<RecordingOperandProbe>();
        eng->probes().insertLocal(0, pc, probe);
        run1(*eng, "f", {Value::makeI32(4)});
        ASSERT_EQ(probe->values.size(), 5u);
        for (int i = 0; i < 4; i++) {
            EXPECT_EQ(probe->values[i].i32(), 0u);  // keep looping
        }
        EXPECT_EQ(probe->values[4].i32(), 1u);      // exit
    }
}

TEST(ProbeJit, InsertionInvalidatesCompiledCode)
{
    EngineConfig c;
    c.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, c);
    uint32_t constPc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    uint32_t brPc = findOpcode(*eng, 0, OP_BR);

    // From inside compiled code, a probe inserts another probe into the
    // executing function: the code is invalidated and the live frame
    // deopts to the interpreter, with no double-firing at the site.
    auto late = std::make_shared<CountProbe>();
    uint64_t pFires = 0;
    eng->probes().insertLocal(0, constPc, makeProbe(
        [&](ProbeContext& ctx) {
            pFires++;
            if (pFires == 5) {
                ctx.engine().probes().insertLocal(0, brPc, late);
            }
        }));
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(100)}).i32(), 300u);
    EXPECT_EQ(pFires, 100u);
    // late was inserted during iteration 5, before that iteration's br.
    EXPECT_EQ(late->count, 96u);
    EXPECT_GE(eng->stats.jitInvalidations, 1u);
    EXPECT_GE(eng->stats.frameDeopts, 1u);
}

TEST(ProbeJit, HotFunctionRecompilesAfterInvalidation)
{
    EngineConfig c;
    c.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, c);
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    uint64_t before = eng->stats.functionsCompiled;
    auto probe = std::make_shared<CountProbe>();
    eng->probes().insertLocal(0, pc, probe);
    // Next call re-enters the (re)compiled code with the probe baked in.
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 30u);
    EXPECT_EQ(probe->count, 10u);
    EXPECT_GE(eng->stats.functionsCompiled, before + 1);
}

TEST(ProbeTiered, OsrIntoCompiledLoopKeepsCounts)
{
    EngineConfig c;
    c.mode = ExecMode::Tiered;
    c.tierUpThreshold = 8;
    c.osrAtLoopBackedge = true;
    auto eng = makeEngine(kLoopWat, c);
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto probe = std::make_shared<CountProbe>();
    eng->probes().insertLocal(0, pc, probe);
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(5000)}).i32(), 15000u);
    EXPECT_EQ(probe->count, 5000u);
    EXPECT_GE(eng->stats.osrEntries, 1u);
}

TEST(ProbeTrap, UnwindInvalidatesAccessorsAndRecovers)
{
    const char* wat = R"((module
      (func (export "boom") (param $n i32) (result i32)
        (local $i i32)
        (block $x (loop $t
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $t)))
        (i32.div_u (i32.const 1) (i32.const 0)))
    ))";
    EngineConfig c;
    c.mode = ExecMode::Jit;
    auto eng = makeEngine(wat, c);
    uint32_t pc = findOpcode(*eng, 0, OP_I32_DIV_U);
    std::shared_ptr<FrameAccessor> leaked;
    eng->probes().insertLocal(0, pc, makeProbe([&](ProbeContext& ctx) {
        leaked = ctx.accessor();
    }));
    auto r = eng->callExport("boom", {Value::makeI32(3)});
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::DivByZero);
    ASSERT_NE(leaked, nullptr);
    EXPECT_FALSE(leaked->valid());
}

TEST(ProbeValidation, RejectsBadLocations)
{
    auto eng = makeEngine(kLoopWat);
    auto p = std::make_shared<CountProbe>();
    // Mid-instruction pc (1 is inside the first instruction's bytes
    // only if instruction 0 is multi-byte; find a genuinely bad pc).
    FuncState& fs = eng->funcState(0);
    uint32_t bad = fs.sideTable.instrBoundaries[0] + 1;
    bool isBoundary = fs.sideTable.isInstrBoundary(bad);
    if (!isBoundary) {
        EXPECT_FALSE(eng->probes().insertLocal(0, bad, p));
    }
    EXPECT_FALSE(eng->probes().insertLocal(99, 0, p));
    EXPECT_FALSE(eng->probes().removeLocal(0, 0, p.get()));
}

TEST_P(ProbeModes, ProbesOnStructuralOpcodes)
{
    // block/loop/end are structural, but probes attach to them like any
    // other instruction (the compiled tier emits the probe and elides
    // the structural op).
    auto eng = makeEngine(kLoopWat, cfg());
    FuncState& fs = eng->funcState(0);
    auto probeAtOp = [&](uint8_t op) {
        uint32_t pc = findOpcode(*eng, 0, op, 0);
        auto p = std::make_shared<CountProbe>();
        EXPECT_TRUE(eng->probes().insertLocal(0, pc, p));
        return p;
    };
    auto pBlock = probeAtOp(OP_BLOCK);
    auto pLoop = probeAtOp(OP_LOOP);
    // The loop's `end` is dead code here (the only exits are branches
    // that jump past it) — its probe must never fire.
    auto pDeadEnd = probeAtOp(OP_END);
    // The function's final `end` executes exactly once per call.
    uint32_t finalEnd = fs.sideTable.instrBoundaries.back();
    auto pFinalEnd = std::make_shared<CountProbe>();
    ASSERT_TRUE(eng->probes().insertLocal(0, finalEnd, pFinalEnd));
    run1(*eng, "f", {Value::makeI32(7)});
    EXPECT_EQ(pBlock->count, 1u);
    EXPECT_EQ(pLoop->count, 1u);
    EXPECT_EQ(pDeadEnd->count, 0u);
    EXPECT_EQ(pFinalEnd->count, 1u);
}

TEST_P(ProbeModes, ProbeAtBranchTargetFires)
{
    // Branching *to* a probed location must fire its probes: the loop
    // header is re-reached via the backedge every iteration.
    auto eng = makeEngine(kLoopWat, cfg());
    FuncState& fs = eng->funcState(0);
    uint32_t headerPc = fs.sideTable.loopHeaders[0];
    auto p = std::make_shared<CountProbe>();
    ASSERT_TRUE(eng->probes().insertLocal(0, headerPc, p));
    run1(*eng, "f", {Value::makeI32(10)});
    // Entry + 10 backedges.
    EXPECT_EQ(p->count, 11u);
}

TEST_P(ProbeModes, MultipleAnalysesComposeWithoutInterference)
{
    // The Section 2.4 headline: monitors compose deterministically.
    // Run three analyses at overlapping locations plus a global probe,
    // and check each one's counts are exactly what it would see alone.
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t constPc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    uint32_t brIfPc = findOpcode(*eng, 0, OP_BR_IF, 0);

    auto count1 = std::make_shared<CountProbe>();
    auto count2 = std::make_shared<CountProbe>();
    auto branchProbe = std::make_shared<RecordingOperandProbe>();
    auto globalCount = std::make_shared<CountProbe>();
    eng->probes().insertLocal(0, constPc, count1);
    eng->probes().insertLocal(0, brIfPc, branchProbe);
    eng->probes().insertLocal(0, constPc, count2);
    eng->probes().insertGlobal(globalCount);

    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(25)}).i32(), 75u);
    EXPECT_EQ(count1->count, 25u);
    EXPECT_EQ(count2->count, 25u);
    EXPECT_EQ(branchProbe->values.size(), 26u);
    EXPECT_GT(globalCount->count, 25u * 8);

    // Removing one analysis leaves the others untouched.
    eng->probes().removeLocal(0, constPc, count1.get());
    eng->probes().removeGlobal(globalCount.get());
    run1(*eng, "f", {Value::makeI32(25)});
    EXPECT_EQ(count1->count, 25u);
    EXPECT_EQ(count2->count, 50u);
    EXPECT_EQ(branchProbe->values.size(), 52u);
}

TEST_P(ProbeModes, ProbesOnEveryInstructionCountExactly)
{
    // Saturation: a CountProbe on every instruction; totals must equal
    // the global probe's instruction count exactly.
    auto eng = makeEngine(kLoopWat, cfg());
    FuncState& fs = eng->funcState(0);
    std::vector<std::shared_ptr<CountProbe>> probes;
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        auto p = std::make_shared<CountProbe>();
        eng->probes().insertLocal(0, pc, p);
        probes.push_back(p);
    }
    run1(*eng, "f", {Value::makeI32(13)});
    uint64_t localTotal = 0;
    for (const auto& p : probes) localTotal += p->count;

    auto eng2 = makeEngine(kLoopWat, cfg());
    auto g = std::make_shared<CountProbe>();
    eng2->probes().insertGlobal(g);
    run1(*eng2, "f", {Value::makeI32(13)});
    EXPECT_EQ(localTotal, g->count);
}

// ---- Batch insertion and probe fusion ----

TEST_P(ProbeModes, BatchInsertAcrossFunctionsSingleEpochBump)
{
    auto eng = makeEngine(kCallWat, cfg());
    uint32_t addPc = findOpcode(*eng, 0, OP_I32_ADD);      // callee
    uint32_t mulPc = findOpcode(*eng, 1, OP_I32_MUL);      // caller
    auto p0 = std::make_shared<CountProbe>();
    auto p1 = std::make_shared<CountProbe>();

    // Deliberately unsorted: insertBatch groups by site itself.
    std::vector<ProbeManager::SiteProbe> batch = {
        {1, mulPc, p1},
        {0, addPc, p0},
    };
    uint64_t epochBefore = eng->instrumentationEpoch;
    EXPECT_EQ(eng->probes().insertBatch(batch), 2u);
    // The whole batch is one instrumentation change, not O(sites).
    EXPECT_EQ(eng->instrumentationEpoch, epochBefore + 1);
    EXPECT_EQ(eng->probes().numProbedSites(), 2u);

    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(5)}).i32(), 11u);
    EXPECT_EQ(p0->count, 1u);
    EXPECT_EQ(p1->count, 1u);
}

TEST_P(ProbeModes, BatchDuplicateSitesFuseInBatchOrder)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    std::vector<int> order;
    std::vector<ProbeManager::SiteProbe> batch;
    for (int id = 0; id < 3; id++) {
        batch.push_back({0, pc, makeProbe(
            [&order, id](ProbeContext&) { order.push_back(id); })});
    }
    EXPECT_EQ(eng->probes().insertBatch(batch), 3u);
    // Three probes, one site, one fused firing entry.
    EXPECT_EQ(eng->probes().numProbedSites(), 1u);
    ASSERT_NE(eng->probes().probesAt(0, pc), nullptr);
    EXPECT_EQ(eng->probes().probesAt(0, pc)->size(), 3u);

    run1(*eng, "f", {Value::makeI32(2)});
    // Duplicates at one site keep their relative batch order.
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; i++) EXPECT_EQ(order[i], i % 3);
}

TEST_P(ProbeModes, FusionComposesBatchAndSingleInserts)
{
    // A fused site built by a batch, then grown by insertLocal: firing
    // order stays global insertion order across both APIs.
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    std::vector<int> order;
    auto rec = [&order](int id) {
        return makeProbe([&order, id](ProbeContext&) {
            order.push_back(id);
        });
    };
    std::vector<ProbeManager::SiteProbe> batch = {
        {0, pc, rec(0)}, {0, pc, rec(1)}, {0, pc, rec(2)}};
    eng->probes().insertBatch(batch);
    eng->probes().insertLocal(0, pc, rec(3));
    eng->probes().insertLocal(0, pc, rec(4));

    run1(*eng, "f", {Value::makeI32(2)});
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i % 5);
}

TEST_P(ProbeModes, SelfRemovalInsideFusedFire)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto before = std::make_shared<CountProbe>();
    uint64_t oneShotFires = 0;
    auto after = std::make_shared<CountProbe>();
    std::vector<ProbeManager::SiteProbe> batch = {
        {0, pc, before},
        {0, pc, makeProbe([&oneShotFires](ProbeContext& ctx) {
             oneShotFires++;
             EXPECT_TRUE(ctx.removeSelf());
         })},
        {0, pc, after},
    };
    eng->probes().insertBatch(batch);

    run1(*eng, "f", {Value::makeI32(10)});
    // The one-shot fired exactly once (deferred removal let its first
    // occurrence complete) and its neighbors in the fusion were
    // untouched before and after the re-fusion.
    EXPECT_EQ(oneShotFires, 1u);
    EXPECT_EQ(before->count, 10u);
    EXPECT_EQ(after->count, 10u);
    EXPECT_EQ(eng->probes().probesAt(0, pc)->size(), 2u);
}

TEST_P(ProbeModes, RemoveSelfCollapsesSiteToIntrinsifiableSingle)
{
    // A site fused as {CountProbe, one-shot} must behave — after the
    // one-shot removes itself — exactly like a site that always had
    // the single CountProbe, including compiled-tier re-specialization.
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    auto counter = std::make_shared<CountProbe>();
    std::vector<ProbeManager::SiteProbe> batch = {
        {0, pc, counter},
        {0, pc, makeProbe([](ProbeContext& ctx) { ctx.removeSelf(); })},
    };
    eng->probes().insertBatch(batch);

    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(100)}).i32(), 300u);
    EXPECT_EQ(counter->count, 100u);
    EXPECT_EQ(eng->probes().probesAt(0, pc)->size(), 1u);
    // Second run: single-member site, intrinsified where enabled.
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(50)}).i32(), 150u);
    EXPECT_EQ(counter->count, 150u);
}

TEST_P(ProbeModes, BatchInsertDuringExecutionIsDeferredOneEpoch)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint32_t constPc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    uint32_t brPc = findOpcode(*eng, 0, OP_BR);
    auto sameSite = std::make_shared<CountProbe>();
    auto otherSite = std::make_shared<CountProbe>();
    uint64_t epochDelta = 0;
    bool inserted = false;
    eng->probes().insertLocal(0, constPc, makeProbe(
        [&](ProbeContext& ctx) {
            if (inserted) return;
            inserted = true;
            // Insert at the firing site AND another site, mid-fire.
            std::vector<ProbeManager::SiteProbe> batch = {
                {0, constPc, sameSite},
                {0, brPc, otherSite},
            };
            uint64_t e0 = ctx.engine().instrumentationEpoch;
            ctx.engine().probes().insertBatch(batch);
            epochDelta = ctx.engine().instrumentationEpoch - e0;
        }));

    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 30u);
    // Mid-execution batch: still exactly one epoch bump.
    EXPECT_EQ(epochDelta, 1u);
    // Deferred insertion at the firing site: occurrence #1 is missed.
    EXPECT_EQ(sameSite->count, 9u);
    // The other site was not mid-fire; it catches its iteration-1 br
    // only if the br had not executed yet this iteration — the br
    // follows the const, so it fires on iterations 1..10.
    EXPECT_EQ(otherSite->count, 10u);
    if (GetParam() == ExecMode::Jit) {
        // The executing function's code was invalidated by the batch.
        EXPECT_GE(eng->stats.jitInvalidations, 1u);
        EXPECT_GE(eng->stats.frameDeopts, 1u);
    }
}

TEST(ProbeBatch, InvalidEntriesAreSkippedValidOnesLand)
{
    auto eng = makeEngine(kLoopWat);
    uint32_t pc = findOpcode(*eng, 0, OP_I32_CONST, 0);
    FuncState& fs = eng->funcState(0);
    uint32_t nonBoundary = fs.sideTable.instrBoundaries[0] + 1;
    auto good = std::make_shared<CountProbe>();
    std::vector<ProbeManager::SiteProbe> batch = {
        {99, 0, std::make_shared<CountProbe>()},   // bad func index
        {0, pc, good},                             // valid
    };
    if (!fs.sideTable.isInstrBoundary(nonBoundary)) {
        batch.push_back({0, nonBoundary, std::make_shared<CountProbe>()});
    }
    size_t expected = 1;
    EXPECT_EQ(eng->probes().insertBatch(batch), expected);
    EXPECT_EQ(eng->probes().numProbedSites(), 1u);
    run1(*eng, "f", {Value::makeI32(7)});
    EXPECT_EQ(good->count, 7u);
}

TEST(ProbeBatch, EmptyBatchIsANoOp)
{
    auto eng = makeEngine(kLoopWat);
    uint64_t epoch = eng->instrumentationEpoch;
    std::vector<ProbeManager::SiteProbe> batch;
    EXPECT_EQ(eng->probes().insertBatch(batch), 0u);
    EXPECT_EQ(eng->instrumentationEpoch, epoch);
    EXPECT_EQ(eng->probes().numProbedSites(), 0u);
}

TEST_P(ProbeModes, RemoveSelfOnGlobalProbe)
{
    auto eng = makeEngine(kLoopWat, cfg());
    uint64_t fires = 0;
    eng->probes().insertGlobal(makeProbe([&fires](ProbeContext& ctx) {
        fires++;
        EXPECT_TRUE(ctx.removeSelf());
    }));
    EXPECT_TRUE(eng->interpreterOnly());
    run1(*eng, "f", {Value::makeI32(10)});
    // One-shot global: fired at exactly one instruction, and the
    // dispatch table switched back.
    EXPECT_EQ(fires, 1u);
    EXPECT_FALSE(eng->interpreterOnly());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ProbeModes,
    ::testing::Values(ExecMode::Interpreter, ExecMode::Jit,
                      ExecMode::Tiered),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
        return test::modeName(info.param);
    });

} // namespace
} // namespace wizpp
