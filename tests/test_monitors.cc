/**
 * @file
 * Monitor zoo tests (paper Section 3): each monitor's measurements are
 * checked against exactly-known ground truth on small programs.
 */

#include <sstream>

#include "monitors/debugger.h"
#include "monitors/entryexit.h"
#include "monitors/monitors.h"
#include "test_util.h"
#include "wasm/opcodes.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::run1;

const char* kBranchyWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $odd i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (if (i32.and (local.get $i) (i32.const 1))
        (then (local.set $odd (i32.add (local.get $odd) (i32.const 1)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $odd))
))";

class MonitorModes : public ::testing::TestWithParam<ExecMode>
{
  protected:
    EngineConfig
    cfg() const
    {
        EngineConfig c;
        c.mode = GetParam();
        c.tierUpThreshold = 2;
        return c;
    }
};

TEST_P(MonitorModes, HotnessLocalAndGlobalAgree)
{
    uint64_t localTotal = 0, globalTotal = 0;
    {
        auto eng = makeEngine(kBranchyWat, cfg());
        HotnessMonitor local(false);
        eng->attachMonitor(&local);
        run1(*eng, "f", {Value::makeI32(10)});
        localTotal = local.totalCount();
    }
    {
        auto eng = makeEngine(kBranchyWat, cfg());
        HotnessMonitor global(true);
        eng->attachMonitor(&global);
        run1(*eng, "f", {Value::makeI32(10)});
        globalTotal = global.totalCount();
    }
    EXPECT_GT(localTotal, 0u);
    // Both implementations count the same dynamic instruction stream
    // (Section 5.2: "the number of probe fires is the same").
    EXPECT_EQ(localTotal, globalTotal);
}

TEST_P(MonitorModes, BranchMonitorCountsDirections)
{
    auto eng = makeEngine(kBranchyWat, cfg());
    BranchMonitor mon;
    eng->attachMonitor(&mon);
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 5u);
    uint64_t brIfTaken = 0, brIfNot = 0, ifTaken = 0, ifNot = 0;
    for (const auto& s : mon.sites()) {
        if (s.probe->opcode == OP_BR_IF) {
            brIfTaken += s.probe->taken;
            brIfNot += s.probe->notTaken;
        } else if (s.probe->opcode == OP_IF) {
            ifTaken += s.probe->taken;
            ifNot += s.probe->notTaken;
        }
    }
    // Loop exit: 10 not-taken, 1 taken. if: 5 odd (taken), 5 even.
    EXPECT_EQ(brIfTaken, 1u);
    EXPECT_EQ(brIfNot, 10u);
    EXPECT_EQ(ifTaken, 5u);
    EXPECT_EQ(ifNot, 5u);
}

TEST_P(MonitorModes, BranchMonitorGlobalVariantAgrees)
{
    auto engL = makeEngine(kBranchyWat, cfg());
    BranchMonitor local(false);
    engL->attachMonitor(&local);
    run1(*engL, "f", {Value::makeI32(25)});

    auto engG = makeEngine(kBranchyWat, cfg());
    BranchMonitor global(true);
    engG->attachMonitor(&global);
    run1(*engG, "f", {Value::makeI32(25)});

    EXPECT_GT(local.totalFires(), 0u);
    EXPECT_EQ(local.totalFires(), global.totalFires());
}

TEST_P(MonitorModes, BranchMonitorBrTableHistogram)
{
    const char* wat = R"((module
      (func (export "f") (param $n i32) (result i32)
        (local $i i32) (local $acc i32)
        (block $x (loop $t
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (block $b2 (block $b1 (block $b0
            (br_table $b0 $b1 $b2
              (i32.rem_u (local.get $i) (i32.const 3))))
            (local.set $acc (i32.add (local.get $acc) (i32.const 1))))
          )
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $t)))
        (local.get $acc))
    ))";
    auto eng = makeEngine(wat, cfg());
    BranchMonitor mon;
    eng->attachMonitor(&mon);
    run1(*eng, "f", {Value::makeI32(9)});
    const BranchMonitor::BranchProbe* bt = nullptr;
    for (const auto& s : mon.sites()) {
        if (s.probe->opcode == OP_BR_TABLE) bt = s.probe.get();
    }
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(bt->fires, 9u);
    ASSERT_GE(bt->dests.size(), 3u);
    EXPECT_EQ(bt->dests[0], 3u);
    EXPECT_EQ(bt->dests[1], 3u);
    EXPECT_EQ(bt->dests[2], 3u);
}

TEST_P(MonitorModes, CoverageReachesOnlyExecutedPaths)
{
    const char* wat = R"((module
      (func (export "f") (param $which i32) (result i32)
        (if (result i32) (local.get $which)
          (then (i32.const 11))
          (else (i32.const 22))))
      (func (export "dead") (result i32) (i32.const 99))
    ))";
    auto eng = makeEngine(wat, cfg());
    CoverageMonitor mon;
    eng->attachMonitor(&mon);
    run1(*eng, "f", {Value::makeI32(1)});  // only the then-branch
    double f0 = mon.covered(0);
    EXPECT_GT(f0, 0.0);
    EXPECT_LT(f0, 1.0);
    EXPECT_EQ(mon.covered(1), 0.0);  // "dead" never ran
    run1(*eng, "f", {Value::makeI32(0)});  // now the else-branch too
    EXPECT_EQ(mon.covered(0), 1.0);
    // Covered sites removed their probes: function 0 is probe-free.
    EXPECT_EQ(eng->funcState(0).probeCount, 0u);
    std::ostringstream report;
    mon.report(report);
    EXPECT_NE(report.str().find("coverage"), std::string::npos);
}

TEST_P(MonitorModes, LoopMonitorCountsIterations)
{
    auto eng = makeEngine(kBranchyWat, cfg());
    LoopMonitor mon;
    eng->attachMonitor(&mon);
    run1(*eng, "f", {Value::makeI32(17)});
    ASSERT_EQ(mon.sites().size(), 1u);
    // The loop header is reached once on entry + once per backedge.
    EXPECT_EQ(mon.sites()[0].probe->count, 18u);
}

TEST_P(MonitorModes, TraceMonitorPrintsEveryInstruction)
{
    auto eng = makeEngine(kBranchyWat, cfg());
    std::ostringstream out;
    TraceMonitor mon(out);
    eng->attachMonitor(&mon);

    HotnessMonitor hot;  // independent count of executed instructions
    eng->attachMonitor(&hot);

    run1(*eng, "f", {Value::makeI32(3)});
    size_t lines = 0;
    for (char c : out.str()) lines += c == '\n';
    EXPECT_EQ(lines, mon.instructionsTraced);
    EXPECT_EQ(hot.totalCount(), mon.instructionsTraced);
    EXPECT_NE(out.str().find("local.get"), std::string::npos);
}

TEST_P(MonitorModes, MemoryMonitorSeesAddressesAndValues)
{
    const char* wat = R"((module
      (memory 1)
      (func (export "f") (result i32)
        (i32.store (i32.const 100) (i32.const 1234))
        (i32.store offset=4 (i32.const 100) (i32.const 5678))
        (i32.add (i32.load (i32.const 100))
                 (i32.load offset=4 (i32.const 100))))
    ))";
    auto eng = makeEngine(wat, cfg());
    std::ostringstream out;
    MemoryMonitor mon(out);
    eng->attachMonitor(&mon);
    EXPECT_EQ(run1(*eng, "f").i32(), 6912u);
    EXPECT_EQ(mon.loads, 2u);
    EXPECT_EQ(mon.stores, 2u);
    EXPECT_NE(out.str().find("store i32.store @100 = i32:1234"),
              std::string::npos);
    EXPECT_NE(out.str().find("@104"), std::string::npos);
}

const char* kCallGraphWat = R"((module
  (type $fn (func (param i32) (result i32)))
  (table 2 funcref)
  (elem (i32.const 0) $double $triple)
  (func $double (param $x i32) (result i32)
    (i32.mul (local.get $x) (i32.const 2)))
  (func $triple (param $x i32) (result i32)
    (i32.mul (local.get $x) (i32.const 3)))
  (func $apply (param $which i32) (param $x i32) (result i32)
    (call_indirect (type $fn) (local.get $x) (local.get $which)))
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc)
        (call $apply (i32.and (local.get $i) (i32.const 1))
                     (local.get $i))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $acc))
))";

TEST_P(MonitorModes, CallsMonitorBuildsDynamicCallGraph)
{
    auto eng = makeEngine(kCallGraphWat, cfg());
    CallsMonitor mon;
    eng->attachMonitor(&mon);
    run1(*eng, "f", {Value::makeI32(10)});
    auto graph = mon.callGraph();
    // f(3) -> apply(2): 10 direct; apply -> double(0): 5; -> triple(1): 5.
    EXPECT_EQ((graph[{3, 2}]), 10u);
    EXPECT_EQ((graph[{2, 0}]), 5u);
    EXPECT_EQ((graph[{2, 1}]), 5u);
    std::ostringstream out;
    mon.report(out);
    EXPECT_NE(out.str().find("call_indirect"), std::string::npos);
}

TEST_P(MonitorModes, CallTreeMonitorBuildsContextTree)
{
    auto eng = makeEngine(kCallGraphWat, cfg());
    CallTreeMonitor mon;
    eng->attachMonitor(&mon);
    run1(*eng, "f", {Value::makeI32(6)});
    // Root -> f (1 call) -> apply (6) -> {double (3), triple (3)}.
    const auto& root = mon.root();
    ASSERT_EQ(root.children.size(), 1u);
    const auto& fNode = *root.children.begin()->second;
    EXPECT_EQ(fNode.funcIndex, 3u);
    EXPECT_EQ(fNode.calls, 1u);
    ASSERT_EQ(fNode.children.size(), 1u);
    const auto& applyNode = *fNode.children.begin()->second;
    EXPECT_EQ(applyNode.calls, 6u);
    EXPECT_EQ(applyNode.children.size(), 2u);
    for (const auto& [idx, child] : applyNode.children) {
        EXPECT_EQ(child->calls, 3u);
    }
    std::ostringstream flame;
    mon.writeFlameGraph(flame);
    EXPECT_FALSE(flame.str().empty());
}

TEST_P(MonitorModes, FunctionEntryExitBalances)
{
    auto eng = makeEngine(kCallGraphWat, cfg());
    uint64_t entries = 0, exits = 0;
    FunctionEntryExit util(
        *eng, [&](uint32_t, uint64_t) { entries++; },
        [&](uint32_t, uint64_t) { exits++; });
    util.instrumentAll();
    run1(*eng, "f", {Value::makeI32(10)});
    // 1 (f) + 10 (apply) + 10 (double/triple) = 21 activations.
    EXPECT_EQ(entries, 21u);
    EXPECT_EQ(exits, entries);
    EXPECT_EQ(util.liveDepth(), 0u);
}

TEST_P(MonitorModes, FunctionEntryExitSeesBranchExits)
{
    // Exit via br to the function's outermost label, taken only
    // sometimes: the utility must consult the branch condition.
    const char* wat = R"((module
      (func $g (param $x i32) (result i32)
        (local $r i32)
        (local.set $r (i32.const 1))
        (block $out
          (br_if $out (i32.eqz (local.get $x)))
          (local.set $r (i32.const 2)))
        (local.get $r))
      (func (export "f") (result i32)
        (i32.add (call $g (i32.const 0)) (call $g (i32.const 7))))
    ))";
    auto eng = makeEngine(wat, cfg());
    uint64_t entries = 0, exits = 0;
    FunctionEntryExit util(
        *eng, [&](uint32_t, uint64_t) { entries++; },
        [&](uint32_t, uint64_t) { exits++; });
    util.instrumentAll();
    EXPECT_EQ(run1(*eng, "f").i32(), 3u);
    EXPECT_EQ(entries, 3u);
    EXPECT_EQ(exits, 3u);
}

TEST_P(MonitorModes, DebuggerScriptedSession)
{
    std::istringstream script(
        "break f 0\n"
        "run\n"
        "locals\n"
        "stack\n"
        "bt\n"
        "set 0 5\n"
        "step\n"
        "continue\n");
    std::ostringstream out;
    auto eng = makeEngine(R"((module
      (func (export "f") (param $n i32) (result i32)
        (i32.mul (local.get $n) (i32.const 10)))
    ))", cfg());
    DebuggerMonitor dbg(script, out);
    eng->attachMonitor(&dbg);
    // The breakpoint fires at entry; `set 0 5` rewrites the argument.
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(3)}).i32(), 50u);
    EXPECT_EQ(dbg.breakpointHits, 1u);
    EXPECT_EQ(dbg.stepsTaken, 1u);
    std::string o = out.str();
    EXPECT_NE(o.find("breakpoint set at f+0"), std::string::npos);
    EXPECT_NE(o.find("local[0] = i32:3"), std::string::npos);
    EXPECT_NE(o.find("local[0] = i32:5"), std::string::npos);
    EXPECT_NE(o.find("step at"), std::string::npos);
}

TEST_P(MonitorModes, DebuggerWatchpoint)
{
    std::istringstream script(
        "watch 64\n"
        "run\n"
        "continue\n"
        "continue\n");
    std::ostringstream out;
    auto eng = makeEngine(R"((module
      (memory 1)
      (func (export "f") (result i32)
        (i32.store (i32.const 32) (i32.const 1))
        (i32.store (i32.const 64) (i32.const 2))
        (i32.load (i32.const 64)))
    ))", cfg());
    DebuggerMonitor dbg(script, out);
    eng->attachMonitor(&dbg);
    run1(*eng, "f");
    EXPECT_EQ(dbg.watchpointHits, 2u);  // one store + one load at 64
}

TEST_P(MonitorModes, StackedMonitorsFuseAndStayIndependent)
{
    // Hotness probes every instruction, branches probes every branch,
    // coverage one-shots every instruction: every branch site carries
    // three fused probes. Each monitor must read exactly what it would
    // read alone, and coverage's O(1) self-removals must shrink — not
    // disturb — the shared fused sites.
    auto eng = makeEngine(kBranchyWat, cfg());
    HotnessMonitor hotness;
    BranchMonitor branches;
    CoverageMonitor coverage;
    eng->attachMonitor(&hotness);
    eng->attachMonitor(&branches);
    eng->attachMonitor(&coverage);

    auto engAlone = makeEngine(kBranchyWat, cfg());
    HotnessMonitor hotnessAlone;
    engAlone->attachMonitor(&hotnessAlone);

    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 5u);
    EXPECT_EQ(run1(*engAlone, "f", {Value::makeI32(10)}).i32(), 5u);

    EXPECT_EQ(hotness.totalCount(), hotnessAlone.totalCount());
    EXPECT_GT(branches.totalFires(), 0u);
    // Everything but the loop's dead `end` is covered.
    EXPECT_GT(coverage.covered(0), 0.9);

    // Coverage removed itself everywhere; hotness and branch probes
    // remain attached and keep counting on a second run.
    uint64_t afterFirst = hotness.totalCount();
    run1(*eng, "f", {Value::makeI32(10)});
    EXPECT_EQ(hotness.totalCount(), 2 * afterFirst);
}

TEST_P(MonitorModes, CoverageSelfRemovalShrinksSitesExactly)
{
    auto eng = makeEngine(kBranchyWat, cfg());
    CoverageMonitor mon;
    eng->attachMonitor(&mon);
    size_t allSites =
        eng->funcState(0).sideTable.instrBoundaries.size();
    EXPECT_EQ(eng->probes().numProbedSites(), allSites);
    run1(*eng, "f", {Value::makeI32(9)});
    // Every covered one-shot fired once and removed itself in O(1):
    // the probed-site count drops to exactly the never-executed
    // locations (e.g. the loop's dead `end`).
    size_t covered = static_cast<size_t>(
        mon.covered(0) * static_cast<double>(allSites) + 0.5);
    EXPECT_GT(covered, 0u);
    EXPECT_EQ(eng->probes().numProbedSites(), allSites - covered);
    EXPECT_EQ(eng->funcState(0).probeCount, allSites - covered);
}

TEST(MonitorRegistry, FactoryKnowsAllMonitors)
{
    std::ostringstream out;
    for (const auto& name : monitorNames()) {
        auto m = createMonitor(name, out);
        ASSERT_NE(m, nullptr) << name;
        EXPECT_FALSE(m->name().empty());
    }
    EXPECT_EQ(createMonitor("bogus", out), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MonitorModes,
    ::testing::Values(ExecMode::Interpreter, ExecMode::Jit,
                      ExecMode::Tiered),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
        return test::modeName(info.param);
    });

} // namespace
} // namespace wizpp
