/**
 * @file
 * Dispatch-backend parity tests (see docs/INTERPRETER.md): the three
 * interpreter dispatch backends (table / switch / threaded) must be
 * observationally identical. Trace streams recorded under each
 * backend — probed and unprobed — are asserted byte-identical across
 * a handful of corpus programs, replayVerify is run cross-backend,
 * and the mid-execution dispatch-table swap (global probes toggling
 * while the loop runs) is exercised under every backend.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "probes/probe.h"
#include "probes/probemanager.h"
#include "suites/suites.h"
#include "test_util.h"
#include "trace/replay.h"

using namespace wizpp;
using wizpp::test::mustParse;

namespace {

std::vector<DispatchBackend>
allBackends()
{
    return {DispatchBackend::Table, DispatchBackend::Switch,
            DispatchBackend::Threaded};
}

EngineConfig
interpConfig(DispatchBackend backend)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    cfg.dispatch = backend;
    return cfg;
}

/** Corpus programs the parity tests sweep (branchy, loopy, float,
    call-heavy, br_table-bearing). */
std::vector<const BenchProgram*>
parityPrograms()
{
    std::vector<const BenchProgram*> out;
    for (const char* name :
         {"richards", "gemm", "trisolv", "durbin", "nussinov"}) {
        const BenchProgram* p = findProgram(name);
        if (p) out.push_back(p);
    }
    EXPECT_GE(out.size(), 3u);
    return out;
}

/** First few instruction pcs of @p funcIndex, as trace probe points. */
std::vector<std::pair<uint32_t, uint32_t>>
somePoints(const Module& m, uint32_t count)
{
    // Load into a scratch engine to get validated side tables.
    Engine eng(interpConfig(DispatchBackend::Table));
    Module copy = m;
    EXPECT_TRUE(eng.loadModule(std::move(copy)).ok());
    std::vector<std::pair<uint32_t, uint32_t>> points;
    for (uint32_t f = 0; f < eng.numFuncs() && points.size() < count;
         f++) {
        FuncState& fs = eng.funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            if (points.size() >= count) break;
            points.push_back({f, pc});
        }
    }
    return points;
}

} // namespace

// ---------------------------------------------------------------------
// Trace parity across backends
// ---------------------------------------------------------------------

TEST(DispatchParity, DefaultBackendMatchesBuildConfig)
{
    // The build default is threaded wherever computed goto exists
    // (WIZPP_DISPATCH may override to switch/table); either way the
    // config must name a runnable backend.
    EngineConfig cfg;
    if (cfg.dispatch == DispatchBackend::Threaded) {
        EXPECT_TRUE(threadedDispatchSupported());
    }
    DispatchBackend parsed;
    ASSERT_TRUE(
        parseDispatchBackend(dispatchBackendName(cfg.dispatch), &parsed));
    EXPECT_EQ(parsed, cfg.dispatch);
    EXPECT_FALSE(parseDispatchBackend("bogus", &parsed));
}

TEST(DispatchParity, UnprobedTracesByteIdentical)
{
    for (const BenchProgram* p : parityPrograms()) {
        std::vector<Value> args{Value::makeI32(1)};
        std::vector<uint8_t> golden =
            recordTrace(mustParse(p->wat),
                        interpConfig(DispatchBackend::Table), p->entry,
                        args);
        ASSERT_FALSE(golden.empty()) << p->name;
        for (DispatchBackend b : allBackends()) {
            std::vector<uint8_t> got = recordTrace(
                mustParse(p->wat), interpConfig(b), p->entry, args);
            EXPECT_EQ(golden, got)
                << p->name << " diverged under "
                << dispatchBackendName(b);
        }
    }
}

TEST(DispatchParity, ProbedTracesByteIdentical)
{
    // Probe points force the OP_PROBE path; the recorder's own probes
    // cover entries/exits and branches. Byte-identical streams mean
    // identical probe firing order under every backend.
    for (const BenchProgram* p : parityPrograms()) {
        Module m = mustParse(p->wat);
        auto points = somePoints(m, 8);
        ASSERT_FALSE(points.empty()) << p->name;
        std::vector<Value> args{Value::makeI32(1)};
        std::vector<uint8_t> golden =
            recordTrace(mustParse(p->wat),
                        interpConfig(DispatchBackend::Table), p->entry,
                        args, points);
        ASSERT_FALSE(golden.empty()) << p->name;
        for (DispatchBackend b : allBackends()) {
            std::vector<uint8_t> got =
                recordTrace(mustParse(p->wat), interpConfig(b),
                            p->entry, args, points);
            EXPECT_EQ(golden, got)
                << p->name << " (probed) diverged under "
                << dispatchBackendName(b);
        }
    }
}

TEST(DispatchParity, ReplayVerifyAcrossBackends)
{
    const BenchProgram* p = findProgram("richards");
    ASSERT_NE(p, nullptr);
    std::vector<Value> args{Value::makeI32(2)};
    std::vector<uint8_t> golden =
        recordTrace(mustParse(p->wat),
                    interpConfig(DispatchBackend::Table), p->entry, args);
    for (DispatchBackend b : allBackends()) {
        ReplayOutcome o =
            replayVerify(golden, mustParse(p->wat), interpConfig(b));
        EXPECT_TRUE(o.ok)
            << dispatchBackendName(b) << ": " << o.message;
    }
}

// ---------------------------------------------------------------------
// Global probes (Probed dispatch mode) under every backend
// ---------------------------------------------------------------------

namespace {

const char* kLoopWat = R"WAT((module
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $a i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (i32.add (local.get $a) (i32.const 3)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $a))))WAT";

} // namespace

TEST(DispatchParity, GlobalProbeCountsIdentical)
{
    uint64_t goldenFires = 0;
    int32_t goldenResult = 0;
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        eng->probes().insertGlobal(std::make_shared<CountProbe>());
        Value r = wizpp::test::run1(*eng, "run", {Value::makeI32(500)});
        uint64_t fires = eng->probes().globalFireCount;
        EXPECT_GT(fires, 500u) << dispatchBackendName(b);
        if (b == DispatchBackend::Table) {
            goldenFires = fires;
            goldenResult = r.i32s();
        } else {
            EXPECT_EQ(goldenFires, fires) << dispatchBackendName(b);
            EXPECT_EQ(goldenResult, r.i32s()) << dispatchBackendName(b);
        }
    }
    EXPECT_EQ(goldenResult, 1500);
}

// ---------------------------------------------------------------------
// Mid-execution dispatch-table swap (the threaded backend's epoch-
// gated jump-table reload; see docs/INTERPRETER.md)
// ---------------------------------------------------------------------

TEST(DispatchSwap, GlobalProbeToggledMidExecution)
{
    // A local probe on the loop body inserts a global probe on its
    // 100th fire; the global probe removes itself after 50 fires. The
    // dispatch table therefore swaps Normal->Probed->Normal while the
    // loop is running, under each backend.
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        Engine& e = *eng;

        // Loop-body site (local.get $a): executes exactly once per
        // iteration, after the br_if exit check.
        FuncState& fs = e.funcState(0);
        ASSERT_GE(fs.sideTable.instrBoundaries.size(), 7u);
        uint32_t bodyPc = fs.sideTable.instrBoundaries[6];

        int localFires = 0;
        int globalFires = 0;
        auto local = makeProbe([&](ProbeContext& ctx) {
            localFires++;
            if (localFires == 100) {
                auto global = makeProbe([&](ProbeContext& gctx) {
                    globalFires++;
                    if (globalFires == 50) gctx.removeSelf();
                });
                ctx.engine().probes().insertGlobal(global);
            }
        });
        ASSERT_TRUE(e.probes().insertLocal(0, bodyPc, local));

        Value r = wizpp::test::run1(e, "run", {Value::makeI32(500)});
        EXPECT_EQ(r.i32s(), 1500) << dispatchBackendName(b);
        EXPECT_EQ(globalFires, 50) << dispatchBackendName(b);
        EXPECT_EQ(localFires, 500) << dispatchBackendName(b);
        // Probed mode was entered and left exactly once.
        EXPECT_EQ(e.stats.dispatchTableSwitches, 2u)
            << dispatchBackendName(b);
        EXPECT_EQ(e.dispatchMode(), DispatchMode::Normal)
            << dispatchBackendName(b);
        EXPECT_EQ(e.dispatchTable(),
                  interpDispatchTable(DispatchMode::Normal));
    }
}

TEST(DispatchSwap, RepeatedTogglesUnderThreaded)
{
    // Stress the jump-table reload: every 50th body fire attaches a
    // one-shot global probe that removes itself immediately, so the
    // table swaps Probed->Normal on the very next instruction, many
    // times in one run.
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        Engine& e = *eng;
        FuncState& fs = e.funcState(0);
        uint32_t bodyPc = fs.sideTable.instrBoundaries[6];

        int localFires = 0;
        int globalFires = 0;
        auto local = makeProbe([&](ProbeContext& ctx) {
            if (++localFires % 50 == 0) {
                e.probes().insertGlobal(makeProbe(
                    [&](ProbeContext& gctx) {
                        globalFires++;
                        gctx.removeSelf();
                    }));
            }
            (void)ctx;
        });
        ASSERT_TRUE(e.probes().insertLocal(0, bodyPc, local));

        Value r = wizpp::test::run1(e, "run", {Value::makeI32(500)});
        EXPECT_EQ(r.i32s(), 1500) << dispatchBackendName(b);
        EXPECT_EQ(localFires, 500) << dispatchBackendName(b);
        EXPECT_EQ(globalFires, 10) << dispatchBackendName(b);
        EXPECT_EQ(e.stats.dispatchTableSwitches, 20u)
            << dispatchBackendName(b);
    }
}

// ---------------------------------------------------------------------
// removeBatch (bulk detach) — satellite of the same PR
// ---------------------------------------------------------------------

TEST(RemoveBatch, MirrorsOneByOneRemoval)
{
    auto eng = wizpp::test::makeEngine(
        kLoopWat, interpConfig(DispatchBackend::Threaded));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    const auto& pcs = fs.sideTable.instrBoundaries;
    ASSERT_GE(pcs.size(), 4u);

    // Two probes on one shared site plus singles elsewhere.
    std::vector<ProbeManager::SiteProbe> batch;
    auto c1 = std::make_shared<CountProbe>();
    auto c2 = std::make_shared<CountProbe>();
    auto c3 = std::make_shared<CountProbe>();
    batch.push_back({0, pcs[1], c1});
    batch.push_back({0, pcs[1], c2});
    batch.push_back({0, pcs[2], c3});
    ASSERT_EQ(e.probes().insertBatch(batch), 3u);
    ASSERT_EQ(e.probes().numProbedSites(), 2u);

    uint64_t epoch0 = e.instrumentationEpoch;
    std::vector<ProbeManager::SiteProbe> detach;
    detach.push_back({0, pcs[2], c3});
    detach.push_back({0, pcs[1], c1});
    detach.push_back({0, pcs[1], c2});
    // A pair that was never attached is skipped, not an error.
    detach.push_back({0, pcs[3], std::make_shared<CountProbe>()});
    EXPECT_EQ(e.probes().removeBatch(detach), 3u);
    EXPECT_EQ(e.probes().numProbedSites(), 0u);
    // One epoch bump for the whole batch.
    EXPECT_EQ(e.instrumentationEpoch, epoch0 + 1);
    EXPECT_EQ(fs.probeCount, 0u);
    // Bytecode restored: the engine runs clean.
    EXPECT_EQ(wizpp::test::run1(e, "run", {Value::makeI32(10)}).i32s(),
              30);
    EXPECT_EQ(e.probes().localFireCount, 0u);
}

TEST(RemoveBatch, PartialRemovalKeepsRemainingProbesFiring)
{
    auto eng = wizpp::test::makeEngine(
        kLoopWat, interpConfig(DispatchBackend::Threaded));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[6];

    auto keep = std::make_shared<CountProbe>();
    auto drop1 = std::make_shared<CountProbe>();
    auto drop2 = std::make_shared<CountProbe>();
    std::vector<ProbeManager::SiteProbe> batch{
        {0, pc, keep}, {0, pc, drop1}, {0, pc, drop2}};
    ASSERT_EQ(e.probes().insertBatch(batch), 3u);

    std::vector<ProbeManager::SiteProbe> detach{{0, pc, drop1},
                                                {0, pc, drop2}};
    EXPECT_EQ(e.probes().removeBatch(detach), 2u);

    wizpp::test::run1(e, "run", {Value::makeI32(25)});
    EXPECT_EQ(keep->count, 25u);
    EXPECT_EQ(drop1->count, 0u);
    EXPECT_EQ(drop2->count, 0u);
}
