/**
 * @file
 * Dispatch-backend parity tests (see docs/INTERPRETER.md): the three
 * interpreter dispatch backends (table / switch / threaded) must be
 * observationally identical. Trace streams recorded under each
 * backend — probed and unprobed — are asserted byte-identical across
 * a handful of corpus programs, replayVerify is run cross-backend,
 * and the mid-execution dispatch-table swap (global probes toggling
 * while the loop runs) is exercised under every backend.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "jit/jitcode.h"
#include "monitors/entryexit.h"
#include "probes/probe.h"
#include "probes/probemanager.h"
#include "suites/suites.h"
#include "test_util.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "wasm/opcodes.h"

using namespace wizpp;
using wizpp::test::mustParse;

namespace {

std::vector<DispatchBackend>
allBackends()
{
    return {DispatchBackend::Table, DispatchBackend::Switch,
            DispatchBackend::Threaded};
}

EngineConfig
interpConfig(DispatchBackend backend)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    cfg.dispatch = backend;
    return cfg;
}

/** Corpus programs the parity tests sweep (branchy, loopy, float,
    call-heavy, br_table-bearing). */
std::vector<const BenchProgram*>
parityPrograms()
{
    std::vector<const BenchProgram*> out;
    for (const char* name :
         {"richards", "gemm", "trisolv", "durbin", "nussinov"}) {
        const BenchProgram* p = findProgram(name);
        if (p) out.push_back(p);
    }
    EXPECT_GE(out.size(), 3u);
    return out;
}

/** First few instruction pcs of @p funcIndex, as trace probe points. */
std::vector<std::pair<uint32_t, uint32_t>>
somePoints(const Module& m, uint32_t count)
{
    // Load into a scratch engine to get validated side tables.
    Engine eng(interpConfig(DispatchBackend::Table));
    Module copy = m;
    EXPECT_TRUE(eng.loadModule(std::move(copy)).ok());
    std::vector<std::pair<uint32_t, uint32_t>> points;
    for (uint32_t f = 0; f < eng.numFuncs() && points.size() < count;
         f++) {
        FuncState& fs = eng.funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            if (points.size() >= count) break;
            points.push_back({f, pc});
        }
    }
    return points;
}

} // namespace

// ---------------------------------------------------------------------
// Trace parity across backends
// ---------------------------------------------------------------------

TEST(DispatchParity, DefaultBackendMatchesBuildConfig)
{
    // The build default is threaded wherever computed goto exists
    // (WIZPP_DISPATCH may override to switch/table); either way the
    // config must name a runnable backend.
    EngineConfig cfg;
    if (cfg.dispatch == DispatchBackend::Threaded) {
        EXPECT_TRUE(threadedDispatchSupported());
    }
    DispatchBackend parsed;
    ASSERT_TRUE(
        parseDispatchBackend(dispatchBackendName(cfg.dispatch), &parsed));
    EXPECT_EQ(parsed, cfg.dispatch);
    EXPECT_FALSE(parseDispatchBackend("bogus", &parsed));
}

TEST(DispatchParity, UnprobedTracesByteIdentical)
{
    for (const BenchProgram* p : parityPrograms()) {
        std::vector<Value> args{Value::makeI32(1)};
        std::vector<uint8_t> golden =
            recordTrace(mustParse(p->wat),
                        interpConfig(DispatchBackend::Table), p->entry,
                        args);
        ASSERT_FALSE(golden.empty()) << p->name;
        for (DispatchBackend b : allBackends()) {
            std::vector<uint8_t> got = recordTrace(
                mustParse(p->wat), interpConfig(b), p->entry, args);
            EXPECT_EQ(golden, got)
                << p->name << " diverged under "
                << dispatchBackendName(b);
        }
    }
}

TEST(DispatchParity, ProbedTracesByteIdentical)
{
    // Probe points force the OP_PROBE path; the recorder's own probes
    // cover entries/exits and branches. Byte-identical streams mean
    // identical probe firing order under every backend.
    for (const BenchProgram* p : parityPrograms()) {
        Module m = mustParse(p->wat);
        auto points = somePoints(m, 8);
        ASSERT_FALSE(points.empty()) << p->name;
        std::vector<Value> args{Value::makeI32(1)};
        std::vector<uint8_t> golden =
            recordTrace(mustParse(p->wat),
                        interpConfig(DispatchBackend::Table), p->entry,
                        args, points);
        ASSERT_FALSE(golden.empty()) << p->name;
        for (DispatchBackend b : allBackends()) {
            std::vector<uint8_t> got =
                recordTrace(mustParse(p->wat), interpConfig(b),
                            p->entry, args, points);
            EXPECT_EQ(golden, got)
                << p->name << " (probed) diverged under "
                << dispatchBackendName(b);
        }
    }
}

TEST(DispatchParity, ReplayVerifyAcrossBackends)
{
    const BenchProgram* p = findProgram("richards");
    ASSERT_NE(p, nullptr);
    std::vector<Value> args{Value::makeI32(2)};
    std::vector<uint8_t> golden =
        recordTrace(mustParse(p->wat),
                    interpConfig(DispatchBackend::Table), p->entry, args);
    for (DispatchBackend b : allBackends()) {
        ReplayOutcome o =
            replayVerify(golden, mustParse(p->wat), interpConfig(b));
        EXPECT_TRUE(o.ok)
            << dispatchBackendName(b) << ": " << o.message;
    }
}

// ---------------------------------------------------------------------
// Global probes (Probed dispatch mode) under every backend
// ---------------------------------------------------------------------

namespace {

const char* kLoopWat = R"WAT((module
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $a i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (i32.add (local.get $a) (i32.const 3)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $a))))WAT";

} // namespace

TEST(DispatchParity, GlobalProbeCountsIdentical)
{
    uint64_t goldenFires = 0;
    int32_t goldenResult = 0;
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        eng->probes().insertGlobal(std::make_shared<CountProbe>());
        Value r = wizpp::test::run1(*eng, "run", {Value::makeI32(500)});
        uint64_t fires = eng->probes().globalFireCount;
        EXPECT_GT(fires, 500u) << dispatchBackendName(b);
        if (b == DispatchBackend::Table) {
            goldenFires = fires;
            goldenResult = r.i32s();
        } else {
            EXPECT_EQ(goldenFires, fires) << dispatchBackendName(b);
            EXPECT_EQ(goldenResult, r.i32s()) << dispatchBackendName(b);
        }
    }
    EXPECT_EQ(goldenResult, 1500);
}

// ---------------------------------------------------------------------
// Mid-execution dispatch-table swap (the threaded backend's epoch-
// gated jump-table reload; see docs/INTERPRETER.md)
// ---------------------------------------------------------------------

TEST(DispatchSwap, GlobalProbeToggledMidExecution)
{
    // A local probe on the loop body inserts a global probe on its
    // 100th fire; the global probe removes itself after 50 fires. The
    // dispatch table therefore swaps Normal->Probed->Normal while the
    // loop is running, under each backend.
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        Engine& e = *eng;

        // Loop-body site (local.get $a): executes exactly once per
        // iteration, after the br_if exit check.
        FuncState& fs = e.funcState(0);
        ASSERT_GE(fs.sideTable.instrBoundaries.size(), 7u);
        uint32_t bodyPc = fs.sideTable.instrBoundaries[6];

        int localFires = 0;
        int globalFires = 0;
        auto local = makeProbe([&](ProbeContext& ctx) {
            localFires++;
            if (localFires == 100) {
                auto global = makeProbe([&](ProbeContext& gctx) {
                    globalFires++;
                    if (globalFires == 50) gctx.removeSelf();
                });
                ctx.engine().probes().insertGlobal(global);
            }
        });
        ASSERT_TRUE(e.probes().insertLocal(0, bodyPc, local));

        Value r = wizpp::test::run1(e, "run", {Value::makeI32(500)});
        EXPECT_EQ(r.i32s(), 1500) << dispatchBackendName(b);
        EXPECT_EQ(globalFires, 50) << dispatchBackendName(b);
        EXPECT_EQ(localFires, 500) << dispatchBackendName(b);
        // Probed mode was entered and left exactly once.
        EXPECT_EQ(e.stats.dispatchTableSwitches, 2u)
            << dispatchBackendName(b);
        EXPECT_EQ(e.dispatchMode(), DispatchMode::Normal)
            << dispatchBackendName(b);
        EXPECT_EQ(e.dispatchTable(),
                  interpDispatchTable(DispatchMode::Normal));
    }
}

TEST(DispatchSwap, RepeatedTogglesUnderThreaded)
{
    // Stress the jump-table reload: every 50th body fire attaches a
    // one-shot global probe that removes itself immediately, so the
    // table swaps Probed->Normal on the very next instruction, many
    // times in one run.
    for (DispatchBackend b : allBackends()) {
        auto eng = wizpp::test::makeEngine(kLoopWat, interpConfig(b));
        Engine& e = *eng;
        FuncState& fs = e.funcState(0);
        uint32_t bodyPc = fs.sideTable.instrBoundaries[6];

        int localFires = 0;
        int globalFires = 0;
        auto local = makeProbe([&](ProbeContext& ctx) {
            if (++localFires % 50 == 0) {
                e.probes().insertGlobal(makeProbe(
                    [&](ProbeContext& gctx) {
                        globalFires++;
                        gctx.removeSelf();
                    }));
            }
            (void)ctx;
        });
        ASSERT_TRUE(e.probes().insertLocal(0, bodyPc, local));

        Value r = wizpp::test::run1(e, "run", {Value::makeI32(500)});
        EXPECT_EQ(r.i32s(), 1500) << dispatchBackendName(b);
        EXPECT_EQ(localFires, 500) << dispatchBackendName(b);
        EXPECT_EQ(globalFires, 10) << dispatchBackendName(b);
        EXPECT_EQ(e.stats.dispatchTableSwitches, 20u)
            << dispatchBackendName(b);
    }
}

// ---------------------------------------------------------------------
// removeBatch (bulk detach) — satellite of the same PR
// ---------------------------------------------------------------------

TEST(RemoveBatch, MirrorsOneByOneRemoval)
{
    auto eng = wizpp::test::makeEngine(
        kLoopWat, interpConfig(DispatchBackend::Threaded));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    const auto& pcs = fs.sideTable.instrBoundaries;
    ASSERT_GE(pcs.size(), 4u);

    // Two probes on one shared site plus singles elsewhere.
    std::vector<ProbeManager::SiteProbe> batch;
    auto c1 = std::make_shared<CountProbe>();
    auto c2 = std::make_shared<CountProbe>();
    auto c3 = std::make_shared<CountProbe>();
    batch.push_back({0, pcs[1], c1});
    batch.push_back({0, pcs[1], c2});
    batch.push_back({0, pcs[2], c3});
    ASSERT_EQ(e.probes().insertBatch(batch), 3u);
    ASSERT_EQ(e.probes().numProbedSites(), 2u);

    uint64_t epoch0 = e.instrumentationEpoch;
    std::vector<ProbeManager::SiteProbe> detach;
    detach.push_back({0, pcs[2], c3});
    detach.push_back({0, pcs[1], c1});
    detach.push_back({0, pcs[1], c2});
    // A pair that was never attached is skipped, not an error.
    detach.push_back({0, pcs[3], std::make_shared<CountProbe>()});
    EXPECT_EQ(e.probes().removeBatch(detach), 3u);
    EXPECT_EQ(e.probes().numProbedSites(), 0u);
    // One epoch bump for the whole batch.
    EXPECT_EQ(e.instrumentationEpoch, epoch0 + 1);
    EXPECT_EQ(fs.probeCount, 0u);
    // Bytecode restored: the engine runs clean.
    EXPECT_EQ(wizpp::test::run1(e, "run", {Value::makeI32(10)}).i32s(),
              30);
    EXPECT_EQ(e.probes().localFireCount, 0u);
}

TEST(RemoveBatch, PartialRemovalKeepsRemainingProbesFiring)
{
    auto eng = wizpp::test::makeEngine(
        kLoopWat, interpConfig(DispatchBackend::Threaded));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[6];

    auto keep = std::make_shared<CountProbe>();
    auto drop1 = std::make_shared<CountProbe>();
    auto drop2 = std::make_shared<CountProbe>();
    std::vector<ProbeManager::SiteProbe> batch{
        {0, pc, keep}, {0, pc, drop1}, {0, pc, drop2}};
    ASSERT_EQ(e.probes().insertBatch(batch), 3u);

    std::vector<ProbeManager::SiteProbe> detach{{0, pc, drop1},
                                                {0, pc, drop2}};
    EXPECT_EQ(e.probes().removeBatch(detach), 2u);

    wizpp::test::run1(e, "run", {Value::makeI32(25)});
    EXPECT_EQ(keep->count, 25u);
    EXPECT_EQ(drop1->count, 0u);
    EXPECT_EQ(drop2->count, 0u);
}

// ---------------------------------------------------------------------
// JIT instrumentation lowering (jit/lowering.h; docs/JIT.md)
// ---------------------------------------------------------------------

namespace {

EngineConfig
jitConfig()
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    return cfg;
}

/** A CountProbe subclass whose fire() is NOT CountProbe::fire: the
    lowering pass must refuse the bare-increment intrinsification or
    the override would be silently skipped in compiled code. */
class DoubleCountProbe : public CountProbe
{
  public:
    void fire(ProbeContext&) override { count += 2; }
};

/** First instruction boundary whose live opcode is @p opcode. */
uint32_t
pcOfOpcode(FuncState& fs, uint8_t opcode)
{
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        if (fs.decl->code[pc] == opcode) return pc;
    }
    ADD_FAILURE() << "opcode not found";
    return 0;
}

} // namespace

TEST(Lowering, ReattachAtSamePcReintrinsifies)
{
    // Regression for the attach -> detach -> attach cycle at one pc:
    // the lowering decision is a pure function of (config, site), so
    // a site that grows to a fused pair and shrinks back must lower
    // exactly as it did before — no stale intrinsification state.
    auto eng = wizpp::test::makeEngine(kLoopWat, jitConfig());
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[6];

    auto count = std::make_shared<CountProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, pc, count));
    wizpp::test::run1(e, "run", {Value::makeI32(10)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::Count);
    EXPECT_EQ(count->count, 10u);
    // Fully intrinsified: the increment never reaches fireSite.
    EXPECT_EQ(e.probes().localFireCount, 0u);

    // The site grows: two members lower to one pre-resolved fused call.
    auto extra = std::make_shared<CountProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, pc, extra));
    wizpp::test::run1(e, "run", {Value::makeI32(10)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::Fused);
    EXPECT_EQ(count->count, 20u);
    EXPECT_EQ(extra->count, 10u);

    // It shrinks back to one member: re-intrinsifies identically.
    ASSERT_TRUE(e.probes().removeLocal(0, pc, extra.get()));
    wizpp::test::run1(e, "run", {Value::makeI32(10)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::Count);
    EXPECT_EQ(count->count, 30u);

    // Full detach -> attach cycle at the same pc.
    ASSERT_TRUE(e.probes().removeLocal(0, pc, count.get()));
    ASSERT_TRUE(e.probes().insertLocal(0, pc, count));
    wizpp::test::run1(e, "run", {Value::makeI32(10)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::Count);
    EXPECT_EQ(count->count, 40u);
}

TEST(Lowering, CountProbeSubclassTakesGenericPath)
{
    // isCountProbe() alone must not trigger the bare-increment
    // intrinsification: DoubleCountProbe overrides fire().
    auto eng = wizpp::test::makeEngine(kLoopWat, jitConfig());
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[6];

    auto sneaky = std::make_shared<DoubleCountProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, pc, sneaky));
    wizpp::test::run1(e, "run", {Value::makeI32(10)});
    ASSERT_TRUE(fs.jit != nullptr);
    // It declares FrameAccess::None, so the generic path sheds its
    // frame checkpoint — but it still dispatches through fire().
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::GenericLite);
    EXPECT_EQ(sneaky->count, 20u);  // the override ran: +2 per fire
    EXPECT_EQ(e.probes().localFireCount, 10u);
}

TEST(Lowering, PerKindConfigTogglesDegradeToGeneric)
{
    // Each intrinsification switch independently downgrades its kind
    // to the runtime-dispatched generic path (full or lite per the
    // site's declared FrameAccess).
    EngineConfig cfg = jitConfig();
    cfg.intrinsifyCountProbe = false;
    cfg.intrinsifyFusedProbe = false;
    auto eng = wizpp::test::makeEngine(kLoopWat, cfg);
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t pc = fs.sideTable.instrBoundaries[6];

    auto count = std::make_shared<CountProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, pc, count));
    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::GenericLite);
    EXPECT_EQ(count->count, 5u);

    // A second member: fused intrinsification is off, and a plain
    // LambdaProbe declares Full access -> the full generic path.
    auto lambda = makeProbe([](ProbeContext&) {});
    ASSERT_TRUE(e.probes().insertLocal(0, pc, lambda));
    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(pc), ProbeLoweringKind::Generic);
    EXPECT_EQ(count->count, 10u);
}

TEST(Lowering, OperandAndEntryExitKindsIntrinsify)
{
    auto eng = wizpp::test::makeEngine(kLoopWat, jitConfig());
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    uint32_t brIfPc = pcOfOpcode(fs, OP_BR_IF);

    auto op = std::make_shared<EmptyOperandProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, brIfPc, op));

    uint64_t entries = 0, exits = 0;
    FunctionEntryExit ee(
        e, [&](uint32_t, uint64_t) { entries++; },
        [&](uint32_t, uint64_t) { exits++; });
    ee.instrument(0);

    wizpp::test::run1(e, "run", {Value::makeI32(3)});
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(brIfPc), ProbeLoweringKind::Operand);
    EXPECT_EQ(fs.jit->loweringAt(0), ProbeLoweringKind::EntryExit);
    EXPECT_EQ(entries, 1u);
    EXPECT_EQ(exits, 1u);
}

// ---------------------------------------------------------------------
// EntryExitProbe: intrinsified vs generic vs interpreter parity
// ---------------------------------------------------------------------

namespace {

/** Observes the top-of-stack at a probed pc through the entry/exit
    activation — the conditional-exit shape of FunctionEntryExit. */
class TosProbe : public EntryExitProbe
{
  public:
    bool needsTopOfStack() const override { return true; }

    void
    fireActivation(const Activation& a) override
    {
        fires++;
        if (a.hasTopOfStack) sum += a.topOfStack.i32();
        else missingTos = true;
    }

    uint64_t sum = 0;
    uint64_t fires = 0;
    bool missingTos = false;
};

} // namespace

TEST(EntryExitProbe, TopOfStackIdenticalAcrossTiers)
{
    // The probe fires just before `local.set $a`, where the top of
    // stack is the freshly computed a+3 — visible identically through
    // the interpreter's accessor path and the compiled tier's inline
    // top-of-stack delivery.
    uint64_t goldenSum = 0, goldenFires = 0;
    for (int mode = 0; mode < 3; mode++) {
        EngineConfig cfg;
        cfg.mode = mode == 0 ? ExecMode::Interpreter : ExecMode::Jit;
        cfg.intrinsifyEntryExitProbe = mode != 2;
        auto eng = wizpp::test::makeEngine(kLoopWat, cfg);
        Engine& e = *eng;
        FuncState& fs = e.funcState(0);
        uint32_t setPc = pcOfOpcode(fs, OP_LOCAL_SET);

        auto tos = std::make_shared<TosProbe>();
        ASSERT_TRUE(e.probes().insertLocal(0, setPc, tos));
        Value r = wizpp::test::run1(e, "run", {Value::makeI32(4)});
        EXPECT_EQ(r.i32s(), 12);
        EXPECT_FALSE(tos->missingTos) << "mode " << mode;
        if (cfg.mode == ExecMode::Jit) {
            ASSERT_TRUE(fs.jit != nullptr);
            EXPECT_EQ(fs.jit->loweringAt(setPc),
                      mode == 1 ? ProbeLoweringKind::EntryExit
                                : ProbeLoweringKind::Generic);
        }
        if (mode == 0) {
            goldenSum = tos->sum;
            goldenFires = tos->fires;
            EXPECT_EQ(tos->sum, 3u + 6u + 9u + 12u);
        } else {
            EXPECT_EQ(tos->sum, goldenSum) << "mode " << mode;
            EXPECT_EQ(tos->fires, goldenFires) << "mode " << mode;
        }
    }
}

// ---------------------------------------------------------------------
// Batched tiered recompilation (Section 4.5; docs/JIT.md)
// ---------------------------------------------------------------------

TEST(TieredRecompile, BatchTriggersExactlyOneLazyRecompile)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 1;
    auto eng = wizpp::test::makeEngine(kLoopWat, cfg);
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);

    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    ASSERT_TRUE(fs.jit != nullptr);
    uint64_t compiled0 = e.stats.functionsCompiled;

    // N probes across one function, one batch: one invalidation, one
    // dirty mark, and — lazily — exactly one recompile.
    const auto& pcs = fs.sideTable.instrBoundaries;
    std::vector<std::shared_ptr<CountProbe>> probes;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t i = 2; i <= 5; i++) {
        auto p = std::make_shared<CountProbe>();
        batch.push_back({0, pcs[i], p});
        probes.push_back(std::move(p));
    }
    ASSERT_EQ(e.probes().insertBatch(batch), 4u);
    EXPECT_TRUE(fs.jit == nullptr);
    EXPECT_TRUE(fs.recompilePending);
    // Lazy, as in Section 4.5: nothing recompiled at batch time.
    EXPECT_EQ(e.stats.functionsCompiled, compiled0);

    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    EXPECT_EQ(e.stats.functionsCompiled, compiled0 + 1);
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_FALSE(fs.recompilePending);
    for (const auto& p : probes) EXPECT_GT(p->count, 0u);

    // The bulk detach is batched the same way.
    std::vector<ProbeManager::SiteProbe> detach;
    for (uint32_t i = 2; i <= 5; i++) {
        detach.push_back({0, pcs[i], probes[i - 2]});
    }
    ASSERT_EQ(e.probes().removeBatch(detach), 4u);
    EXPECT_EQ(e.stats.functionsCompiled, compiled0 + 1);
    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    EXPECT_EQ(e.stats.functionsCompiled, compiled0 + 2);
}

TEST(TieredRecompile, InterleavedOneByOneRecompilesPerProbe)
{
    // The contrast case the batch API exists for: inserting N probes
    // one at a time while the function keeps executing recompiles it
    // N times (each insert invalidates the freshly recompiled code).
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 1;
    auto eng = wizpp::test::makeEngine(kLoopWat, cfg);
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);

    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    uint64_t compiled0 = e.stats.functionsCompiled;

    const auto& pcs = fs.sideTable.instrBoundaries;
    for (uint32_t i = 2; i <= 5; i++) {
        ASSERT_TRUE(
            e.probes().insertLocal(0, pcs[i],
                                   std::make_shared<CountProbe>()));
        EXPECT_TRUE(fs.recompilePending);
        wizpp::test::run1(e, "run", {Value::makeI32(5)});
    }
    EXPECT_EQ(e.stats.functionsCompiled, compiled0 + 4);
}

TEST(TieredRecompile, DirtyFunctionRecompilesBelowHotnessThreshold)
{
    // A dirty mark alone must trigger the recompile: with a sky-high
    // threshold the hotness counter could never re-earn tier-up, but
    // a function that *was* compiled (here: eagerly, then switched to
    // a high bar) recompiles on its first post-batch call.
    EngineConfig cfg;
    cfg.mode = ExecMode::Tiered;
    cfg.tierUpThreshold = 2;
    auto eng = wizpp::test::makeEngine(kLoopWat, cfg);
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);

    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    ASSERT_TRUE(fs.jit != nullptr);
    uint64_t compiled0 = e.stats.functionsCompiled;

    // Make re-earning hotness impossible, then dirty the function.
    fs.hotness = 0;
    auto p = std::make_shared<CountProbe>();
    ASSERT_TRUE(
        e.probes().insertLocal(0, fs.sideTable.instrBoundaries[6], p));
    ASSERT_TRUE(fs.recompilePending);

    wizpp::test::run1(e, "run", {Value::makeI32(5)});
    EXPECT_EQ(e.stats.functionsCompiled, compiled0 + 1);
    ASSERT_TRUE(fs.jit != nullptr);
    EXPECT_EQ(fs.jit->loweringAt(fs.sideTable.instrBoundaries[6]),
              ProbeLoweringKind::Count);
    EXPECT_EQ(p->count, 5u);
}

// ---------------------------------------------------------------------
// Cross-tier trace byte-identity around probe batches (the Tiered
// column of the dispatch parity matrix)
// ---------------------------------------------------------------------

namespace {

/** A function exiting through a conditional branch to its outermost
    label: the recorder's exit probe there needs the top-of-stack, so
    Tiered runs exercise the intrinsified conditional-exit path. */
const char* kCondExitWat = R"WAT((module
  (func $step (param $x i32) (result i32)
    (local $r i32)
    (local.set $r (i32.add (local.get $x) (i32.const 1)))
    (local.get $r)
    (br_if 0 (i32.and (local.get $x) (i32.const 1)))
    (drop)
    (i32.add (local.get $x) (i32.const 2)))
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $a i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (call $step (local.get $a)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $a))))WAT";

/**
 * Records a trace of run(500) on kLoopWat under @p cfg while a driver
 * probe inserts a batch of empty probes at its 40th fire and removes
 * it at its 120th — mid-run instrumentation churn (invalidation,
 * deopt, lazy recompile in Tiered mode) that must not perturb the
 * recorded event stream.
 */
std::vector<uint8_t>
recordAroundMidRunBatch(EngineConfig cfg)
{
    Engine eng(cfg);
    auto lr = eng.loadModule(wizpp::test::mustParse(kLoopWat));
    EXPECT_TRUE(lr.ok());
    TraceRecorder rec;
    eng.attachMonitor(&rec);
    FuncState& fs = eng.funcState(0);
    const auto& pcs = fs.sideTable.instrBoundaries;
    EXPECT_TRUE(rec.addProbePoint(0, pcs[4]));
    EXPECT_TRUE(rec.addProbePoint(0, pcs[8]));

    auto batch = std::make_shared<std::vector<ProbeManager::SiteProbe>>();
    for (uint32_t i = 9; i <= 12; i++) {
        batch->push_back({0, pcs[i], std::make_shared<EmptyProbe>()});
    }
    int fires = 0;
    auto driver = makeProbe([batch, &fires](ProbeContext& ctx) {
        fires++;
        if (fires == 40) {
            auto copy = *batch;
            ctx.engine().probes().insertBatch(copy);
        } else if (fires == 120) {
            auto copy = *batch;
            ctx.engine().probes().removeBatch(copy);
        }
    });
    EXPECT_TRUE(eng.probes().insertLocal(0, pcs[6], driver));

    EXPECT_TRUE(eng.instantiate().ok());
    std::vector<Value> args{Value::makeI32(500)};
    rec.setInvocation("run", args);
    auto r = eng.callExport("run", args);
    EXPECT_TRUE(r.ok());
    rec.finish(TrapReason::None, r.ok() ? r.value()
                                        : std::vector<Value>{});
    return rec.bytes();
}

} // namespace

TEST(TieredTraceParity, ProbedTracesMatchInterpreterAcrossTiers)
{
    // Probes attached before the run: the full probe-point + recorder
    // load, byte-identical whether frames interpret, run compiled
    // code, or tier up mid-run.
    for (const char* name : {"richards", "gemm"}) {
        const BenchProgram* p = findProgram(name);
        ASSERT_NE(p, nullptr);
        Module m = mustParse(p->wat);
        auto points = somePoints(m, 8);
        ASSERT_FALSE(points.empty());
        std::vector<Value> args{Value::makeI32(1)};
        EngineConfig interp;
        interp.mode = ExecMode::Interpreter;
        std::vector<uint8_t> golden = recordTrace(
            mustParse(p->wat), interp, p->entry, args, points);
        ASSERT_FALSE(golden.empty());
        for (ExecMode mode : {ExecMode::Jit, ExecMode::Tiered}) {
            EngineConfig cfg;
            cfg.mode = mode;
            cfg.tierUpThreshold = 2;
            std::vector<uint8_t> got = recordTrace(
                mustParse(p->wat), cfg, p->entry, args, points);
            EXPECT_EQ(golden, got)
                << name << " diverged in mode " << int(mode);
        }
    }
}

TEST(TieredTraceParity, ConditionalExitTracesMatchAcrossTiers)
{
    // kCondExitWat exits $step through a br_if to the function label:
    // the recorder's conditional-exit probes run intrinsified with
    // inline top-of-stack delivery in the compiled tiers.
    std::vector<Value> args{Value::makeI32(64)};
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;
    std::vector<uint8_t> golden = recordTrace(
        wizpp::test::mustParse(kCondExitWat), interp, "run", args);
    ASSERT_FALSE(golden.empty());
    for (ExecMode mode : {ExecMode::Jit, ExecMode::Tiered}) {
        EngineConfig cfg;
        cfg.mode = mode;
        cfg.tierUpThreshold = 3;
        std::vector<uint8_t> got = recordTrace(
            wizpp::test::mustParse(kCondExitWat), cfg, "run", args);
        EXPECT_EQ(golden, got) << "mode " << int(mode);
        // And with every intrinsification kind disabled.
        cfg.intrinsifyCountProbe = false;
        cfg.intrinsifyOperandProbe = false;
        cfg.intrinsifyEntryExitProbe = false;
        cfg.intrinsifyFusedProbe = false;
        got = recordTrace(wizpp::test::mustParse(kCondExitWat), cfg,
                          "run", args);
        EXPECT_EQ(golden, got) << "generic, mode " << int(mode);
    }
}

TEST(TieredTraceParity, MidRunBatchInsertRemoveKeepsTraceIdentity)
{
    // Probes attached and removed *during* the run (including during
    // tier-up): the batch churns invalidation/deopt/lazy-recompile
    // underneath the recorder, and the stream must not move a byte.
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;
    std::vector<uint8_t> golden = recordAroundMidRunBatch(interp);
    ASSERT_FALSE(golden.empty());
    for (ExecMode mode : {ExecMode::Jit, ExecMode::Tiered}) {
        EngineConfig cfg;
        cfg.mode = mode;  // Tiered: default threshold tiers up mid-run
        std::vector<uint8_t> got = recordAroundMidRunBatch(cfg);
        EXPECT_EQ(golden, got) << "mode " << int(mode);
    }
}
