;; Known-leaky fixture for `wizeng --analyze=leaks` (docs/ANALYSIS.md).
;;
;; $leak grows linear memory and lets the memory.grow result — an
;; address in pages — escape through all three sink kinds the static
;; taint analysis tracks: stored to memory, passed to a host call, and
;; returned to the caller. The analysis must report three definite
;; address-leak findings here and none in $clean.
(module
  (import "env" "sink" (func $sink (param i32)))
  (memory 1)
  (func (export "leak") (param $n i32) (result i32)
    (local $base i32)
    (local.set $base (memory.grow (local.get $n)))
    ;; definite leak 1: the grown base is stored to linear memory
    (i32.store (i32.const 0) (local.get $base))
    ;; definite leak 2: the grown base is passed to an imported host call
    (call $sink (local.get $base))
    ;; definite leak 3: the grown base is returned to the caller
    (local.get $base))
  (func (export "clean") (param $n i32) (result i32)
    (i32.add (local.get $n) (i32.const 1))))
