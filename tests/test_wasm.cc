/**
 * @file
 * Wasm substrate tests: LEB128, binary decoder/encoder round trips,
 * instruction views, the validator's side tables and error detection,
 * and the WAT parser.
 */

#include <gtest/gtest.h>

#include "suites/suites.h"
#include "support/leb128.h"
#include "wasm/decoder.h"
#include "wasm/disasm.h"
#include "wasm/encoder.h"
#include "wasm/opcodes.h"
#include "wasm/validator.h"
#include "wat/wat.h"

namespace wizpp {
namespace {

// ---- LEB128 ----

class LebU32RoundTrip : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LebU32RoundTrip, EncodeDecode)
{
    std::vector<uint8_t> buf;
    encodeULEB(buf, GetParam());
    auto r = decodeULEB<uint32_t>(buf.data(), buf.data() + buf.size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, GetParam());
    EXPECT_EQ(r.length, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, LebU32RoundTrip,
    ::testing::Values(0u, 1u, 127u, 128u, 129u, 16383u, 16384u,
                      0x0fffffffu, 0x7fffffffu, 0x80000000u, 0xffffffffu));

class LebI64RoundTrip : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(LebI64RoundTrip, EncodeDecode)
{
    std::vector<uint8_t> buf;
    encodeSLEB(buf, GetParam());
    auto r = decodeSLEB<int64_t>(buf.data(), buf.data() + buf.size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, GetParam());
    EXPECT_EQ(r.length, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, LebI64RoundTrip,
    ::testing::Values(int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63},
                      int64_t{64}, int64_t{-64}, int64_t{-65},
                      int64_t{1} << 31, -(int64_t{1} << 31),
                      INT64_MAX, INT64_MIN));

TEST(Leb, RejectsTruncatedInput)
{
    uint8_t cont[] = {0x80, 0x80};  // continuation bits with no end
    EXPECT_FALSE(decodeULEB<uint32_t>(cont, cont + 2).ok());
    EXPECT_FALSE(decodeSLEB<int32_t>(cont, cont + 2).ok());
}

TEST(Leb, RejectsOverlongU32)
{
    uint8_t six[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    EXPECT_FALSE(decodeULEB<uint32_t>(six, six + 6).ok());
    uint8_t overflowTop[] = {0xff, 0xff, 0xff, 0xff, 0x7f};
    // Top bits beyond 32 must be rejected.
    EXPECT_FALSE(decodeULEB<uint32_t>(overflowTop, overflowTop + 5).ok());
}

TEST(Leb, PaddedEncodingDecodes)
{
    std::vector<uint8_t> buf;
    encodePaddedULEB32(buf, 300);
    EXPECT_EQ(buf.size(), 5u);
    auto r = decodeULEB<uint32_t>(buf.data(), buf.data() + 5);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 300u);
}

// ---- Binary round trips over the whole corpus ----

class BinaryRoundTrip : public ::testing::TestWithParam<const BenchProgram*>
{
};

TEST_P(BinaryRoundTrip, EncodeDecodeEncodeIsStable)
{
    auto m1r = parseWat(GetParam()->wat);
    ASSERT_TRUE(m1r.ok());
    Module m1 = m1r.take();
    std::vector<uint8_t> b1 = encodeModule(m1);
    auto m2r = decodeModule(b1);
    ASSERT_TRUE(m2r.ok()) << m2r.error().toString();
    Module m2 = m2r.take();
    // Structural equality where it matters.
    EXPECT_EQ(m1.types.size(), m2.types.size());
    ASSERT_EQ(m1.functions.size(), m2.functions.size());
    for (size_t i = 0; i < m1.functions.size(); i++) {
        EXPECT_EQ(m1.functions[i].code, m2.functions[i].code) << i;
        EXPECT_EQ(m1.functions[i].typeIndex, m2.functions[i].typeIndex);
        EXPECT_EQ(m1.functions[i].locals, m2.functions[i].locals);
    }
    EXPECT_EQ(m1.exports.size(), m2.exports.size());
    EXPECT_EQ(m1.globals.size(), m2.globals.size());
    // Fixed point: encode(decode(encode(m))) == encode(m).
    EXPECT_EQ(encodeModule(m2), b1);
    // The decoded module still validates.
    EXPECT_TRUE(validateModule(m2).ok());
}

std::vector<const BenchProgram*>
someCorpus()
{
    std::vector<const BenchProgram*> out;
    const auto& all = allPrograms();
    for (size_t i = 0; i < all.size(); i += 5) out.push_back(&all[i]);
    out.push_back(&richardsProgram());
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BinaryRoundTrip, ::testing::ValuesIn(someCorpus()),
    [](const ::testing::TestParamInfo<const BenchProgram*>& info) {
        std::string n = info.param->name;
        for (char& c : n) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return n;
    });

// ---- Decoder errors ----

TEST(Decoder, RejectsBadMagic)
{
    std::vector<uint8_t> bytes = {0x00, 'a', 's', 'n', 1, 0, 0, 0};
    EXPECT_FALSE(decodeModule(bytes).ok());
}

TEST(Decoder, RejectsBadVersion)
{
    std::vector<uint8_t> bytes = {0x00, 'a', 's', 'm', 2, 0, 0, 0};
    EXPECT_FALSE(decodeModule(bytes).ok());
}

TEST(Decoder, RejectsTruncatedSection)
{
    std::vector<uint8_t> bytes = {0x00, 'a', 's', 'm', 1, 0, 0, 0,
                                  1, 0x20};  // type section claims 32 bytes
    EXPECT_FALSE(decodeModule(bytes).ok());
}

TEST(Decoder, EmptyModuleIsValid)
{
    std::vector<uint8_t> bytes = {0x00, 'a', 's', 'm', 1, 0, 0, 0};
    auto r = decodeModule(bytes);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().functions.empty());
    EXPECT_TRUE(validateModule(r.value()).ok());
}

TEST(Decoder, RejectsTruncatedInstructions)
{
    // Malformed bodies must make decodeInstr return false (and
    // instrLength 0) rather than read past the end — the contract the
    // static analyzer and every rewriting pass relies on.
    InstrView v;

    // A block opcode as the very last byte (blocktype missing).
    std::vector<uint8_t> blockEnd = {OP_BLOCK};
    EXPECT_FALSE(decodeInstr(blockEnd, 0, &v));
    EXPECT_EQ(instrLength(blockEnd, 0), 0u);

    // A 0xFC prefix with no subopcode byte.
    std::vector<uint8_t> fcEnd = {OP_PREFIX_FC};
    EXPECT_FALSE(decodeInstr(fcEnd, 0, &v));
    EXPECT_EQ(instrLength(fcEnd, 0), 0u);

    // An unsupported 0xFC subopcode (8 = memory.init, not modeled).
    std::vector<uint8_t> fcUnknown = {OP_PREFIX_FC, 0x08};
    EXPECT_FALSE(decodeInstr(fcUnknown, 0, &v));

    // memory.fill missing its trailing memory-index byte.
    std::vector<uint8_t> fillShort = {OP_PREFIX_FC, FC_MEMORY_FILL};
    EXPECT_FALSE(decodeInstr(fillShort, 0, &v));

    // memory.copy with only one of its two memory-index bytes.
    std::vector<uint8_t> copyShort = {OP_PREFIX_FC, FC_MEMORY_COPY,
                                      0x00};
    EXPECT_FALSE(decodeInstr(copyShort, 0, &v));
}

TEST(Decoder, RejectsOversizedBrTableCount)
{
    // A br_table whose LEB target count exceeds the remaining bytes
    // (here: claims ~268M targets in a 6-byte body) must be rejected
    // instead of looping over bogus targets.
    InstrView v;
    std::vector<uint8_t> huge = {OP_BR_TABLE, 0xff, 0xff, 0xff,
                                 0x7f, 0x00};
    EXPECT_FALSE(decodeInstr(huge, 0, &v));
    EXPECT_EQ(instrLength(huge, 0), 0u);

    // Sanity: a well-formed two-target br_table still decodes.
    std::vector<uint8_t> good = {OP_BR_TABLE, 0x01, 0x00, 0x00};
    EXPECT_TRUE(decodeInstr(good, 0, &v));
    EXPECT_EQ(v.opcode, OP_BR_TABLE);
    EXPECT_EQ(v.length, 4u);
}

TEST(Decoder, InstrViewsDecodeImmediates)
{
    auto m = parseWat(R"((module (memory 1)
      (func (param $x i32) (result i32)
        (i32.load offset=16 (local.get $x)))))");
    ASSERT_TRUE(m.ok());
    const auto& code = m.value().functions[0].code;
    InstrView v;
    ASSERT_TRUE(decodeInstr(code, 0, &v));
    EXPECT_EQ(v.opcode, OP_LOCAL_GET);
    EXPECT_EQ(v.index, 0u);
    ASSERT_TRUE(decodeInstr(code, v.length, &v));
    EXPECT_EQ(v.opcode, OP_I32_LOAD);
    EXPECT_EQ(v.memOffset, 16u);
    EXPECT_EQ(v.align, 2u);
    EXPECT_EQ(instrLength(code, 0), 2u);
}

// ---- Validator ----

Module
moduleWithBody(std::vector<uint8_t> body,
               std::vector<ValType> params = {},
               std::vector<ValType> results = {})
{
    Module m;
    FuncType ft;
    ft.params = std::move(params);
    ft.results = std::move(results);
    m.types.push_back(ft);
    FuncDecl f;
    f.index = 0;
    f.typeIndex = 0;
    body.push_back(OP_END);
    f.code = std::move(body);
    m.functions.push_back(std::move(f));
    return m;
}

TEST(Validator, RejectsStackUnderflow)
{
    EXPECT_FALSE(validateModule(moduleWithBody({OP_DROP})).ok());
    EXPECT_FALSE(validateModule(moduleWithBody({OP_I32_ADD})).ok());
}

TEST(Validator, RejectsTypeMismatch)
{
    // i32.const then f64.neg
    Module m = moduleWithBody({OP_I32_CONST, 1, OP_F64_NEG, OP_DROP});
    EXPECT_FALSE(validateModule(m).ok());
}

TEST(Validator, RejectsMissingResult)
{
    Module m = moduleWithBody({}, {}, {ValType::I32});
    EXPECT_FALSE(validateModule(m).ok());
}

TEST(Validator, RejectsBadLabelDepth)
{
    Module m = moduleWithBody({OP_BR, 2});
    EXPECT_FALSE(validateModule(m).ok());
}

TEST(Validator, RejectsMemoryOpsWithoutMemory)
{
    Module m = moduleWithBody(
        {OP_I32_CONST, 0, OP_I32_LOAD, 2, 0, OP_DROP});
    EXPECT_FALSE(validateModule(m).ok());
}

TEST(Validator, RejectsExcessAlignment)
{
    auto m = parseWat(R"((module (memory 1)
      (func (result i32) (i32.load align=8 (i32.const 0)))))");
    ASSERT_TRUE(m.ok());
    EXPECT_FALSE(validateModule(m.value()).ok());
}

TEST(Validator, RejectsSetOfImmutableGlobal)
{
    auto m = parseWat(R"((module
      (global $g i32 (i32.const 1))
      (func (global.set $g (i32.const 2)))))");
    ASSERT_TRUE(m.ok());
    EXPECT_FALSE(validateModule(m.value()).ok());
}

TEST(Validator, AcceptsUnreachablePolymorphism)
{
    // After `unreachable`, the stack is polymorphic.
    Module m = moduleWithBody({OP_UNREACHABLE, OP_I32_ADD, OP_DROP});
    EXPECT_TRUE(validateModule(m).ok());
}

TEST(Validator, BuildsLoopHeadersAndBoundaries)
{
    auto m = parseWat(R"((module
      (func (param $n i32)
        (local $i i32)
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l))))))");
    ASSERT_TRUE(m.ok());
    auto v = validateFunction(m.value(), 0);
    ASSERT_TRUE(v.ok());
    const SideTable& st = v.value();
    EXPECT_EQ(st.loopHeaders.size(), 1u);
    EXPECT_GT(st.instrBoundaries.size(), 8u);
    EXPECT_TRUE(st.isInstrBoundary(0));
    // The backedge br targets the loop header.
    bool sawBackedge = false;
    for (const auto& [pc, e] : st.branches) {
        if (e.targetPc == st.loopHeaders[0]) sawBackedge = true;
    }
    EXPECT_TRUE(sawBackedge);
    EXPECT_GT(st.maxOperandHeight, 0u);
}

TEST(Validator, BranchValueCarrying)
{
    // A block with a result: br carries one value.
    auto m = parseWat(R"((module
      (func (export "f") (param $x i32) (result i32)
        (block $b (result i32)
          (br_if $b (i32.const 42) (local.get $x))
          (drop)
          (i32.const 7)))))");
    // Note: folded br_if here takes (value, cond); our dialect parses
    // operand lists in order, so this emits const 42, local.get, br_if.
    ASSERT_TRUE(m.ok()) << m.error().toString();
    EXPECT_TRUE(validateModule(m.value()).ok())
        << validateModule(m.value()).error().toString();
}

// ---- WAT parser ----

TEST(Wat, RejectsSyntaxErrors)
{
    EXPECT_FALSE(parseWat("(module (func").ok());
    EXPECT_FALSE(parseWat("(module (func (bogus.op)))").ok());
    EXPECT_FALSE(parseWat("(module (func (br $nope)))").ok());
    EXPECT_FALSE(parseWat("(module (func (local.get $nope)))").ok());
    EXPECT_FALSE(parseWat("(notmodule)").ok());
}

TEST(Wat, ParsesCommentsAndStrings)
{
    auto m = parseWat(R"((module
      ;; line comment
      (; block (; nested ;) comment ;)
      (memory 1)
      (data (i32.const 0) "ab\00\ff" "cd")
    ))");
    ASSERT_TRUE(m.ok()) << m.error().toString();
    ASSERT_EQ(m.value().datas.size(), 1u);
    const auto& bytes = m.value().datas[0].bytes;
    ASSERT_EQ(bytes.size(), 6u);
    EXPECT_EQ(bytes[0], 'a');
    EXPECT_EQ(bytes[2], 0u);
    EXPECT_EQ(bytes[3], 0xffu);
    EXPECT_EQ(bytes[5], 'd');
}

TEST(Wat, ParsesTypeUseAndNamedType)
{
    auto m = parseWat(R"((module
      (type $binop (func (param i32 i32) (result i32)))
      (func $f (type $binop) (i32.add (local.get 0) (local.get 1)))
      (export "f" (func $f))
    ))");
    ASSERT_TRUE(m.ok()) << m.error().toString();
    EXPECT_EQ(m.value().types.size(), 1u);
    EXPECT_EQ(m.value().functions[0].typeIndex, 0u);
    EXPECT_TRUE(validateModule(m.value()).ok());
}

TEST(Disasm, RendersInstructionsAndStructure)
{
    auto m = parseWat(R"((module (memory 1)
      (func $k (param $n i32) (result i32)
        (local $i i32)
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $i (i32.add (local.get $i) (i32.const 3)))
          (br $l)))
        (local.get $i))))");
    ASSERT_TRUE(m.ok());
    std::ostringstream out;
    disassembleFunction(m.value(), 0, out);
    std::string listing = out.str();
    EXPECT_NE(listing.find("func $k #0 [i32] -> [i32]"),
              std::string::npos);
    EXPECT_NE(listing.find("i32.const 3"), std::string::npos);
    EXPECT_NE(listing.find("br_if 1"), std::string::npos);
    // Loop bodies are indented deeper than the block header.
    size_t blockPos = listing.find("block");
    size_t brIfPos = listing.find("br_if");
    ASSERT_NE(blockPos, std::string::npos);
    ASSERT_NE(brIfPos, std::string::npos);
    // Probed-location marking: the first instruction line (after the
    // header) carries a '*'.
    std::vector<uint32_t> probed = {0};
    std::ostringstream out2;
    disassembleFunction(m.value(), 0, out2, &probed);
    EXPECT_NE(out2.str().find("\n*"), std::string::npos);
}

TEST(Disasm, SingleInstructionForms)
{
    auto m = parseWat(R"((module (memory 1)
      (func (result f64)
        (f64.store offset=8 (i32.const 0) (f64.const 2.5))
        (f64.load offset=8 (i32.const 0)))))");
    ASSERT_TRUE(m.ok());
    const auto& code = m.value().functions[0].code;
    std::vector<std::string> rendered;
    size_t pc = 0;
    while (pc < code.size()) {
        rendered.push_back(disassembleInstr(code,
                                            static_cast<uint32_t>(pc)));
        pc += instrLength(code, pc);
    }
    ASSERT_GE(rendered.size(), 5u);
    EXPECT_EQ(rendered[0], "i32.const 0");
    EXPECT_EQ(rendered[1].substr(0, 9), "f64.const");
    EXPECT_EQ(rendered[2], "f64.store offset=8");
    EXPECT_EQ(rendered[4], "f64.load offset=8");
}

TEST(Wat, HexAndUnderscoreLiterals)
{
    auto m = parseWat(R"((module
      (func (export "f") (result i64)
        (i64.add (i64.const 0xff_00) (i64.const 1_000)))
    ))");
    ASSERT_TRUE(m.ok()) << m.error().toString();
    EXPECT_TRUE(validateModule(m.value()).ok());
}

} // namespace
} // namespace wizpp
