/**
 * @file
 * Corpus tests: every benchmark program of every suite parses,
 * validates, and produces bit-identical checksums in the interpreter,
 * the compiled tier, and tiered mode (differential cross-tier testing).
 */

#include "suites/suites.h"
#include "test_util.h"

namespace wizpp {
namespace {

using test::run1;

class SuiteProgram
    : public ::testing::TestWithParam<const BenchProgram*>
{
};

TEST_P(SuiteProgram, ParsesAndValidates)
{
    const BenchProgram& p = *GetParam();
    auto m = parseWat(p.wat);
    ASSERT_TRUE(m.ok()) << p.name << ": " << m.error().toString();
    auto v = validateModule(m.value());
    ASSERT_TRUE(v.ok()) << p.name << ": " << v.error().toString();
    EXPECT_GE(m.value().findFuncExport(p.entry), 0) << p.name;
}

TEST_P(SuiteProgram, CrossTierChecksumsAgree)
{
    const BenchProgram& p = *GetParam();
    uint64_t bits[3];
    ExecMode modes[3] = {ExecMode::Interpreter, ExecMode::Jit,
                         ExecMode::Tiered};
    for (int i = 0; i < 3; i++) {
        EngineConfig cfg;
        cfg.mode = modes[i];
        cfg.tierUpThreshold = 1;
        auto eng = test::makeEngine(p.wat, cfg);
        Value v = run1(*eng, p.entry, {Value::makeI32(1)});
        EXPECT_EQ(v.type, ValType::F64) << p.name;
        bits[i] = v.bits;
    }
    EXPECT_EQ(bits[0], bits[1])
        << p.name << ": interpreter vs jit disagree";
    EXPECT_EQ(bits[0], bits[2])
        << p.name << ": interpreter vs tiered disagree";
}

TEST_P(SuiteProgram, DeterministicAcrossRuns)
{
    const BenchProgram& p = *GetParam();
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = test::makeEngine(p.wat, cfg);
    Value a = run1(*eng, p.entry, {Value::makeI32(1)});
    Value b = run1(*eng, p.entry, {Value::makeI32(1)});
    EXPECT_EQ(a.bits, b.bits) << p.name;
}

std::vector<const BenchProgram*>
allProgramPointers()
{
    std::vector<const BenchProgram*> out;
    for (const auto& p : allPrograms()) out.push_back(&p);
    out.push_back(&richardsProgram());
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SuiteProgram, ::testing::ValuesIn(allProgramPointers()),
    [](const ::testing::TestParamInfo<const BenchProgram*>& info) {
        std::string n = info.param->suite + "_" + info.param->name;
        for (char& c : n) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return n;
    });

TEST(SuiteRegistry, CountsMatchThePaper)
{
    EXPECT_EQ(programsBySuite("polybench").size(), 29u);
    EXPECT_EQ(programsBySuite("ostrich").size(), 8u);
    EXPECT_GE(programsBySuite("libsodium").size(), 25u);
    EXPECT_NE(findProgram("gemm"), nullptr);
    EXPECT_NE(findProgram("richards"), nullptr);
    EXPECT_EQ(findProgram("no-such-program"), nullptr);
}

TEST(SuiteRegistry, RichardsIsCallHeavy)
{
    // Richards should execute many function calls relative to its
    // instruction count (the Section 6 premise).
    const BenchProgram& p = richardsProgram();
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    auto eng = test::makeEngine(p.wat, cfg);
    // Count call instructions executed with a probe on every call site.
    uint64_t calls = 0;
    for (uint32_t f = 0; f < eng->numFuncs(); f++) {
        FuncState& fs = eng->funcState(f);
        if (fs.decl->imported) continue;
        for (uint32_t pc : fs.sideTable.instrBoundaries) {
            uint8_t op = fs.decl->code[pc];
            if (op == 0x10 || op == 0x11) {  // call, call_indirect
                eng->probes().insertLocal(f, pc,
                    makeProbe([&calls](ProbeContext&) { calls++; }));
            }
        }
    }
    run1(*eng, "run", {Value::makeI32(1)});
    EXPECT_GT(calls, 50000u);
}

} // namespace
} // namespace wizpp
