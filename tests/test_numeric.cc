/**
 * @file
 * Spec-style numeric edge-case tests, executed in every tier: trap
 * conditions, saturating truncation, NaN propagation of min/max, shift
 * masking, sign extension, rotation, clz/ctz of zero, memory.fill and
 * memory.copy (including overlap).
 */

#include "test_util.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::run1;

struct NumCase
{
    const char* name;
    const char* expr;        ///< WAT expression producing the result
    Value expected;
    TrapReason trap = TrapReason::None;
};

class NumericEdge
    : public ::testing::TestWithParam<std::tuple<ExecMode, NumCase>>
{
};

TEST_P(NumericEdge, Evaluates)
{
    auto [mode, c] = GetParam();
    const char* rt = nullptr;
    switch (c.expected.type) {
      case ValType::I32: rt = "i32"; break;
      case ValType::I64: rt = "i64"; break;
      case ValType::F32: rt = "f32"; break;
      case ValType::F64: rt = "f64"; break;
      default: FAIL();
    }
    std::string wat = std::string("(module (memory 1) ") +
                      "(func (export \"f\") (result " + rt + ") " +
                      c.expr + "))";
    EngineConfig cfg;
    cfg.mode = mode;
    auto eng = makeEngine(wat, cfg);
    auto r = eng->callExport("f", {});
    if (c.trap != TrapReason::None) {
        EXPECT_FALSE(r.ok()) << c.name;
        EXPECT_EQ(eng->lastTrap(), c.trap) << c.name;
        return;
    }
    ASSERT_TRUE(r.ok()) << c.name << ": "
                        << (r.ok() ? "" : r.error().toString());
    EXPECT_EQ(r.value()[0].bits, c.expected.bits)
        << c.name << " got " << r.value()[0].toString() << " want "
        << c.expected.toString();
}

const NumCase kCases[] = {
    // Integer division/remainder traps and edge values.
    {"div_s_overflow",
     "(i32.div_s (i32.const -2147483648) (i32.const -1))", Value{},
     TrapReason::IntegerOverflow},
    {"rem_s_min_negone",
     "(i32.rem_s (i32.const -2147483648) (i32.const -1))",
     Value::makeI32(0)},
    {"div_u_by_zero", "(i32.div_u (i32.const 1) (i32.const 0))", Value{},
     TrapReason::DivByZero},
    {"i64_div_s_overflow",
     "(i64.div_s (i64.const -9223372036854775808) (i64.const -1))",
     Value::makeI64(int64_t{0}), TrapReason::IntegerOverflow},
    {"i64_rem_u", "(i64.rem_u (i64.const 7) (i64.const 3))",
     Value::makeI64(int64_t{1})},
    // Shift masking.
    {"shl_masked", "(i32.shl (i32.const 1) (i32.const 33))",
     Value::makeI32(2)},
    {"shr_s_masked", "(i32.shr_s (i32.const -8) (i32.const 35))",
     Value::makeI32(-1)},
    {"i64_shl_masked", "(i64.shl (i64.const 1) (i64.const 65))",
     Value::makeI64(int64_t{2})},
    // Rotation.
    {"rotl_zero", "(i32.rotl (i32.const 0x12345678) (i32.const 0))",
     Value::makeI32(0x12345678u)},
    {"rotl_8", "(i32.rotl (i32.const 0x12345678) (i32.const 8))",
     Value::makeI32(0x34567812u)},
    {"rotr_4", "(i32.rotr (i32.const 0x12345678) (i32.const 4))",
     Value::makeI32(0x81234567u)},
    // clz/ctz/popcnt edges.
    {"clz_zero", "(i32.clz (i32.const 0))", Value::makeI32(32u)},
    {"ctz_zero", "(i32.ctz (i32.const 0))", Value::makeI32(32u)},
    {"i64_clz_zero", "(i64.clz (i64.const 0))",
     Value::makeI64(uint64_t{64})},
    {"popcnt_all", "(i32.popcnt (i32.const -1))", Value::makeI32(32u)},
    // Sign extension.
    {"extend8_neg", "(i32.extend8_s (i32.const 0x80))",
     Value::makeI32(-128)},
    {"extend16_pos", "(i32.extend16_s (i32.const 0x7fff))",
     Value::makeI32(32767)},
    {"i64_extend32", "(i64.extend32_s (i64.const 0xffffffff))",
     Value::makeI64(int64_t{-1})},
    // Trapping truncation bounds.
    {"trunc_f64_i32_max_ok",
     "(i32.trunc_f64_s (f64.const 2147483647.0))",
     Value::makeI32(2147483647)},
    {"trunc_f64_i32_overflow",
     "(i32.trunc_f64_s (f64.const 2147483648.0))", Value{},
     TrapReason::IntegerOverflow},
    {"trunc_f64_i32_nan", "(i32.trunc_f64_s (f64.const nan))", Value{},
     TrapReason::InvalidConversion},
    {"trunc_f32_u_neg", "(i32.trunc_f32_u (f32.const -1.5))", Value{},
     TrapReason::IntegerOverflow},
    {"trunc_frac_ok", "(i32.trunc_f64_u (f64.const 3.999))",
     Value::makeI32(3u)},
    // Saturating truncation.
    {"sat_overflow", "(i32.trunc_sat_f64_s (f64.const 1e30))",
     Value::makeI32(2147483647)},
    {"sat_underflow", "(i32.trunc_sat_f64_s (f64.const -1e30))",
     Value::makeI32(int32_t{-2147483647 - 1})},
    {"sat_nan", "(i32.trunc_sat_f32_s (f32.const nan))",
     Value::makeI32(0)},
    {"sat_u64", "(i64.trunc_sat_f64_u (f64.const 1e30))",
     Value::makeI64(uint64_t{0xffffffffffffffffull})},
    // Float min/max NaN propagation and signed zero.
    {"min_nan", "(f64.eq (f64.min (f64.const nan) (f64.const 1)) "
     "(f64.min (f64.const nan) (f64.const 1)))", Value::makeI32(0u)},
    {"max_zero_signs",
     "(i64.reinterpret_f64 (f64.max (f64.const -0.0) (f64.const 0.0)))",
     Value::makeI64(uint64_t{0})},
    {"min_zero_signs",
     "(i64.reinterpret_f64 (f64.min (f64.const -0.0) (f64.const 0.0)))",
     Value::makeI64(uint64_t{0x8000000000000000ull})},
    // Nearest: round half to even.
    {"nearest_half_even", "(f64.nearest (f64.const 2.5))",
     Value::makeF64(2.0)},
    {"nearest_half_even2", "(f64.nearest (f64.const 3.5))",
     Value::makeF64(4.0)},
    {"nearest_neg", "(f64.nearest (f64.const -0.5))",
     Value::makeF64(-0.0)},
    // Copysign.
    {"copysign", "(f32.copysign (f32.const 3.0) (f32.const -0.0))",
     Value::makeF32(-3.0f)},
    // Conversions.
    {"convert_u_big", "(f64.convert_i32_u (i32.const -1))",
     Value::makeF64(4294967295.0)},
    {"convert_i64_u",
     "(f64.convert_i64_u (i64.const -1))",
     Value::makeF64(18446744073709551616.0)},
    {"demote", "(f32.demote_f64 (f64.const 1.0000000001))",
     Value::makeF32(1.0f)},
    {"wrap", "(i32.wrap_i64 (i64.const 0x1ffffffff))",
     Value::makeI32(0xffffffffu)},
    // Memory fill/copy.
    {"mem_fill_then_load",
     "(memory.fill (i32.const 16) (i32.const 0xab) (i32.const 8)) "
     "(i32.load8_u (i32.const 20))", Value::makeI32(0xabu)},
    {"mem_copy_overlap",
     "(i32.store (i32.const 0) (i32.const 0x04030201)) "
     "(memory.copy (i32.const 1) (i32.const 0) (i32.const 3)) "
     "(i32.load (i32.const 0))", Value::makeI32(0x03020101u)},
    {"mem_fill_oob",
     "(memory.fill (i32.const 65530) (i32.const 1) (i32.const 100)) "
     "(i32.const 0)", Value{}, TrapReason::MemoryOutOfBounds},
    // Load/store with offsets at the boundary.
    {"load_offset_edge_ok",
     "(i32.load offset=65532 (i32.const 0))", Value::makeI32(0u)},
    {"load_offset_oob",
     "(i32.load offset=65533 (i32.const 0))", Value{},
     TrapReason::MemoryOutOfBounds},
    {"store16_truncates",
     "(i32.store16 (i32.const 8) (i32.const 0x12345678)) "
     "(i32.load16_u (i32.const 8))", Value::makeI32(0x5678u)},
};

INSTANTIATE_TEST_SUITE_P(
    AllModesAllCases, NumericEdge,
    ::testing::Combine(
        ::testing::Values(ExecMode::Interpreter, ExecMode::Jit),
        ::testing::ValuesIn(kCases)),
    [](const ::testing::TestParamInfo<
        std::tuple<ExecMode, NumCase>>& info) {
        return std::string(test::modeName(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param).name;
    });

} // namespace
} // namespace wizpp
