/**
 * @file
 * Shared test helpers: parse WAT, build an engine, run an export.
 */

#ifndef WIZPP_TESTS_TEST_UTIL_H
#define WIZPP_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "wat/wat.h"

namespace wizpp::test {

/** Parses WAT or fails the test. */
inline Module
mustParse(const std::string& wat)
{
    auto r = parseWat(wat);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    if (!r.ok()) return Module{};
    return r.take();
}

/** Builds a ready-to-run engine from WAT source. */
inline std::unique_ptr<Engine>
makeEngine(const std::string& wat, EngineConfig cfg = {})
{
    auto eng = std::make_unique<Engine>(cfg);
    auto lr = eng->loadModule(mustParse(wat));
    EXPECT_TRUE(lr.ok()) << (lr.ok() ? "" : lr.error().toString());
    auto ir = eng->instantiate();
    EXPECT_TRUE(ir.ok()) << (ir.ok() ? "" : ir.error().toString());
    return eng;
}

/** Calls an export and returns the single result or fails. */
inline Value
run1(Engine& eng, const std::string& name,
     const std::vector<Value>& args = {})
{
    auto r = eng.callExport(name, args);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    if (!r.ok() || r.value().empty()) return Value{};
    return r.value()[0];
}

/** Engine configs exercised by cross-tier parameterized tests. */
inline std::vector<EngineConfig>
allModes()
{
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;
    EngineConfig jit;
    jit.mode = ExecMode::Jit;
    EngineConfig tiered;
    tiered.mode = ExecMode::Tiered;
    tiered.tierUpThreshold = 2;
    return {interp, jit, tiered};
}

inline const char*
modeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Interpreter: return "Interpreter";
      case ExecMode::Jit: return "Jit";
      case ExecMode::Tiered: return "Tiered";
    }
    return "?";
}

} // namespace wizpp::test

#endif // WIZPP_TESTS_TEST_UTIL_H
