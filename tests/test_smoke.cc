/**
 * @file
 * End-to-end smoke tests: WAT -> decode -> validate -> execute in every
 * tier configuration.
 */

#include "test_util.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::run1;

class SmokeAllModes : public ::testing::TestWithParam<ExecMode>
{
  protected:
    EngineConfig
    cfg() const
    {
        EngineConfig c;
        c.mode = GetParam();
        c.tierUpThreshold = 2;
        return c;
    }
};

TEST_P(SmokeAllModes, AddFunction)
{
    auto eng = makeEngine(R"((module
      (func (export "add") (param $a i32) (param $b i32) (result i32)
        (i32.add (local.get $a) (local.get $b)))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "add", {Value::makeI32(2), Value::makeI32(40)})
                  .i32(), 42u);
    EXPECT_EQ(run1(*eng, "add", {Value::makeI32(-5), Value::makeI32(3)})
                  .i32s(), -2);
}

TEST_P(SmokeAllModes, LoopSum)
{
    auto eng = makeEngine(R"((module
      (func (export "sum") (param $n i32) (result i32)
        (local $i i32) (local $acc i32)
        (block $exit
          (loop $top
            (br_if $exit (i32.ge_u (local.get $i) (local.get $n)))
            (local.set $acc (i32.add (local.get $acc) (local.get $i)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $top)))
        (local.get $acc))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "sum", {Value::makeI32(10)}).i32(), 45u);
    EXPECT_EQ(run1(*eng, "sum", {Value::makeI32(0)}).i32(), 0u);
    EXPECT_EQ(run1(*eng, "sum", {Value::makeI32(1000)}).i32(), 499500u);
}

TEST_P(SmokeAllModes, RecursiveFactorial)
{
    auto eng = makeEngine(R"((module
      (func $fac (export "fac") (param $n i64) (result i64)
        (if (result i64) (i64.le_u (local.get $n) (i64.const 1))
          (then (i64.const 1))
          (else (i64.mul (local.get $n)
                  (call $fac (i64.sub (local.get $n) (i64.const 1)))))))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "fac", {Value::makeI64(int64_t{10})}).i64(),
              3628800u);
    EXPECT_EQ(run1(*eng, "fac", {Value::makeI64(int64_t{1})}).i64(), 1u);
}

TEST_P(SmokeAllModes, MemoryRoundTrip)
{
    auto eng = makeEngine(R"((module
      (memory (export "mem") 1)
      (func (export "store") (param $addr i32) (param $v f64)
        (f64.store (local.get $addr) (local.get $v)))
      (func (export "load") (param $addr i32) (result f64)
        (f64.load (local.get $addr)))
    ))", cfg());
    auto r = eng->callExport("store",
        {Value::makeI32(64), Value::makeF64(3.25)});
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(run1(*eng, "load", {Value::makeI32(64)}).f64(), 3.25);
}

TEST_P(SmokeAllModes, CallIndirect)
{
    auto eng = makeEngine(R"((module
      (type $binop (func (param i32 i32) (result i32)))
      (table 4 funcref)
      (elem (i32.const 0) $add $sub $mul)
      (func $add (param i32 i32) (result i32)
        (i32.add (local.get 0) (local.get 1)))
      (func $sub (param i32 i32) (result i32)
        (i32.sub (local.get 0) (local.get 1)))
      (func $mul (param i32 i32) (result i32)
        (i32.mul (local.get 0) (local.get 1)))
      (func (export "dispatch") (param $op i32) (param $a i32) (param $b i32)
            (result i32)
        (call_indirect (type $binop)
          (local.get $a) (local.get $b) (local.get $op)))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "dispatch",
        {Value::makeI32(0), Value::makeI32(7), Value::makeI32(5)}).i32(),
        12u);
    EXPECT_EQ(run1(*eng, "dispatch",
        {Value::makeI32(1), Value::makeI32(7), Value::makeI32(5)}).i32(),
        2u);
    EXPECT_EQ(run1(*eng, "dispatch",
        {Value::makeI32(2), Value::makeI32(7), Value::makeI32(5)}).i32(),
        35u);
    // Uninitialized table entry traps.
    auto bad = eng->callExport("dispatch",
        {Value::makeI32(3), Value::makeI32(1), Value::makeI32(1)});
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::UninitializedTableEntry);
}

TEST_P(SmokeAllModes, BrTable)
{
    auto eng = makeEngine(R"((module
      (func (export "classify") (param $x i32) (result i32)
        (block $b2
          (block $b1
            (block $b0
              (br_table $b0 $b1 $b2 (local.get $x)))
            (return (i32.const 100)))
          (return (i32.const 200)))
        (i32.const 300))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "classify", {Value::makeI32(0)}).i32(), 100u);
    EXPECT_EQ(run1(*eng, "classify", {Value::makeI32(1)}).i32(), 200u);
    EXPECT_EQ(run1(*eng, "classify", {Value::makeI32(2)}).i32(), 300u);
    EXPECT_EQ(run1(*eng, "classify", {Value::makeI32(99)}).i32(), 300u);
}

TEST_P(SmokeAllModes, GlobalsAndStart)
{
    auto eng = makeEngine(R"((module
      (global $g (mut i32) (i32.const 10))
      (func $init (global.set $g (i32.const 17)))
      (start $init)
      (func (export "get") (result i32) (global.get $g))
    ))", cfg());
    EXPECT_EQ(run1(*eng, "get").i32(), 17u);
}

TEST_P(SmokeAllModes, Traps)
{
    auto eng = makeEngine(R"((module
      (memory 1)
      (func (export "div") (param i32 i32) (result i32)
        (i32.div_s (local.get 0) (local.get 1)))
      (func (export "oob") (result i32) (i32.load (i32.const 0x10000000)))
      (func (export "boom") (unreachable))
    ))", cfg());
    auto r1 = eng->callExport("div", {Value::makeI32(1), Value::makeI32(0)});
    EXPECT_FALSE(r1.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::DivByZero);
    auto r2 = eng->callExport("oob", {});
    EXPECT_FALSE(r2.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::MemoryOutOfBounds);
    auto r3 = eng->callExport("boom", {});
    EXPECT_FALSE(r3.ok());
    EXPECT_EQ(eng->lastTrap(), TrapReason::Unreachable);
    // The engine recovers after traps.
    EXPECT_EQ(run1(*eng, "div", {Value::makeI32(10), Value::makeI32(2)})
                  .i32(), 5u);
}

TEST_P(SmokeAllModes, HostImport)
{
    EngineConfig c = cfg();
    auto eng = std::make_unique<Engine>(c);
    uint64_t hostCalls = 0;
    HostFunc hf;
    hf.type.params = {ValType::I32};
    hf.type.results = {ValType::I32};
    hf.fn = [&hostCalls](const std::vector<Value>& args,
                         std::vector<Value>* results) {
        hostCalls++;
        results->push_back(Value::makeI32(args[0].i32() * 2));
        return TrapReason::None;
    };
    eng->imports().addFunc("env", "twice", hf);
    auto lr = eng->loadModule(test::mustParse(R"((module
      (import "env" "twice" (func $twice (param i32) (result i32)))
      (func (export "quad") (param $x i32) (result i32)
        (call $twice (call $twice (local.get $x))))
    ))"));
    ASSERT_TRUE(lr.ok()) << lr.error().toString();
    ASSERT_TRUE(eng->instantiate().ok());
    EXPECT_EQ(run1(*eng, "quad", {Value::makeI32(5)}).i32(), 20u);
    EXPECT_EQ(hostCalls, 2u);
}

TEST_P(SmokeAllModes, FloatKernels)
{
    auto eng = makeEngine(R"((module
      (memory 1)
      (func (export "dot") (param $n i32) (result f64)
        (local $i i32) (local $acc f64)
        ;; fill a[i] = i, b[i] = 2i, then dot product
        (block $exit0
          (loop $fill
            (br_if $exit0 (i32.ge_u (local.get $i) (local.get $n)))
            (f64.store (i32.mul (local.get $i) (i32.const 8))
                       (f64.convert_i32_u (local.get $i)))
            (f64.store (i32.add (i32.const 2048)
                                (i32.mul (local.get $i) (i32.const 8)))
                       (f64.mul (f64.convert_i32_u (local.get $i))
                                (f64.const 2)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $fill)))
        (local.set $i (i32.const 0))
        (block $exit
          (loop $top
            (br_if $exit (i32.ge_u (local.get $i) (local.get $n)))
            (local.set $acc (f64.add (local.get $acc)
              (f64.mul
                (f64.load (i32.mul (local.get $i) (i32.const 8)))
                (f64.load (i32.add (i32.const 2048)
                            (i32.mul (local.get $i) (i32.const 8)))))))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $top)))
        (local.get $acc))
    ))", cfg());
    // dot = sum 2*i^2 for i in [0,10) = 2*285 = 570
    EXPECT_DOUBLE_EQ(run1(*eng, "dot", {Value::makeI32(10)}).f64(), 570.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SmokeAllModes,
    ::testing::Values(ExecMode::Interpreter, ExecMode::Jit,
                      ExecMode::Tiered),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
        return test::modeName(info.param);
    });

} // namespace
} // namespace wizpp
