/**
 * @file
 * Property-based differential tests: randomly generated programs must
 * (a) produce bit-identical results in every execution tier, and
 * (b) produce the *same* results when instrumented — probes are
 * non-intrusive by construction, so no monitor may perturb program
 * results.
 */

#include <random>
#include <sstream>

#include "monitors/monitors.h"
#include "probes/frameaccessor.h"
#include "test_util.h"

namespace wizpp {
namespace {

using test::mustParse;

/** Generates random well-typed WAT expressions. */
class ExprGen
{
  public:
    explicit ExprGen(uint32_t seed) : _rng(seed) {}

    /** A full module with one exported function of random body. */
    std::string
    module()
    {
        std::ostringstream out;
        out << "(module (func (export \"f\") (param $a i32) "
               "(param $b i32) (param $x f64) (result f64)\n";
        out << "  (f64.add " << f64Expr(4) << "\n"
            << "    (f64.convert_i32_s " << i32Expr(4) << ")))";
        out << ")";
        return out.str();
    }

  private:
    uint32_t pick(uint32_t n) { return _rng() % n; }

    std::string
    i32Leaf()
    {
        switch (pick(3)) {
          case 0: return "(local.get $a)";
          case 1: return "(local.get $b)";
          default:
            return "(i32.const " +
                   std::to_string(static_cast<int32_t>(_rng())) + ")";
        }
    }

    std::string
    i32Expr(int depth)
    {
        if (depth == 0) return i32Leaf();
        switch (pick(12)) {
          case 0:
            return "(i32.add " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 1:
            return "(i32.sub " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 2:
            return "(i32.mul " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 3:
            return "(i32.xor " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 4:
            return "(i32.rotl " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 5:
            // Division with a denominator forced nonzero.
            return "(i32.div_u " + i32Expr(depth - 1) + " (i32.or " +
                   i32Expr(depth - 1) + " (i32.const 16)))";
          case 6:
            return "(i32.shr_s " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 7:
            return "(select " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + " " + i32Expr(depth - 1) + ")";
          case 8:
            return "(i32.lt_s " + i32Expr(depth - 1) + " " +
                   i32Expr(depth - 1) + ")";
          case 9:
            return "(i32.wrap_i64 (i64.mul (i64.extend_i32_s " +
                   i32Expr(depth - 1) + ") (i64.const 0x9e3779b9)))";
          case 10:
            return "(i32.trunc_sat_f64_s " + f64Expr(depth - 1) + ")";
          default:
            return "(i32.popcnt " + i32Expr(depth - 1) + ")";
        }
    }

    std::string
    f64Leaf()
    {
        switch (pick(2)) {
          case 0: return "(local.get $x)";
          default: {
            double v = static_cast<double>(static_cast<int32_t>(_rng())) /
                       65536.0;
            std::ostringstream s;
            s << "(f64.const " << v << ")";
            return s.str();
          }
        }
    }

    std::string
    f64Expr(int depth)
    {
        if (depth == 0) return f64Leaf();
        switch (pick(8)) {
          case 0:
            return "(f64.add " + f64Expr(depth - 1) + " " +
                   f64Expr(depth - 1) + ")";
          case 1:
            return "(f64.sub " + f64Expr(depth - 1) + " " +
                   f64Expr(depth - 1) + ")";
          case 2:
            return "(f64.mul " + f64Expr(depth - 1) + " " +
                   f64Expr(depth - 1) + ")";
          case 3:
            return "(f64.min " + f64Expr(depth - 1) + " " +
                   f64Expr(depth - 1) + ")";
          case 4:
            return "(f64.abs " + f64Expr(depth - 1) + ")";
          case 5:
            return "(f64.floor " + f64Expr(depth - 1) + ")";
          case 6:
            return "(f64.convert_i32_u " + i32Expr(depth - 1) + ")";
          default:
            return "(select " + f64Expr(depth - 1) + " " +
                   f64Expr(depth - 1) + " " + i32Expr(depth - 1) + ")";
        }
    }

    std::mt19937 _rng;
};

class RandomPrograms : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RandomPrograms, TiersAgreeBitExactly)
{
    ExprGen gen(GetParam());
    std::string wat = gen.module();
    Module m = mustParse(wat);
    ASSERT_TRUE(validateModule(m).ok()) << wat;

    std::vector<Value> args = {Value::makeI32(GetParam() * 7 + 3),
                               Value::makeI32(-42),
                               Value::makeF64(3.375)};
    uint64_t expected = 0;
    for (ExecMode mode :
         {ExecMode::Interpreter, ExecMode::Jit, ExecMode::Tiered}) {
        EngineConfig cfg;
        cfg.mode = mode;
        cfg.tierUpThreshold = 1;
        auto eng = test::makeEngine(wat, cfg);
        auto r = eng->callExport("f", args);
        ASSERT_TRUE(r.ok()) << wat;
        if (mode == ExecMode::Interpreter) {
            expected = r.value()[0].bits;
        } else {
            EXPECT_EQ(r.value()[0].bits, expected) << wat;
        }
    }
}

TEST_P(RandomPrograms, MonitorsAreNonIntrusive)
{
    ExprGen gen(GetParam() + 1000);
    std::string wat = gen.module();
    std::vector<Value> args = {Value::makeI32(GetParam() * 13),
                               Value::makeI32(99),
                               Value::makeF64(-0.5)};

    auto plain = test::makeEngine(wat);
    auto r0 = plain->callExport("f", args);
    ASSERT_TRUE(r0.ok());
    uint64_t expected = r0.value()[0].bits;

    // Every zoo monitor must leave the result bit-identical.
    std::ostringstream sink;
    for (const std::string& name :
         {std::string("hotness"), std::string("hotness-global"),
          std::string("branches"), std::string("coverage"),
          std::string("loops"), std::string("calls"),
          std::string("calltree"), std::string("trace-stack")}) {
        auto eng = test::makeEngine(wat);
        auto mon = createMonitor(name, sink);
        ASSERT_NE(mon, nullptr);
        eng->attachMonitor(mon.get());
        auto r = eng->callExport("f", args);
        ASSERT_TRUE(r.ok()) << name;
        EXPECT_EQ(r.value()[0].bits, expected)
            << "monitor '" << name << "' perturbed the program\n" << wat;
    }
}

TEST_P(RandomPrograms, FrameReadsAreNonIntrusive)
{
    // A probe that aggressively reads every local and operand of every
    // frame on every instruction must not change the result.
    ExprGen gen(GetParam() + 2000);
    std::string wat = gen.module();
    std::vector<Value> args = {Value::makeI32(5), Value::makeI32(-7),
                               Value::makeF64(1.25)};
    auto plain = test::makeEngine(wat);
    uint64_t expected = plain->callExport("f", args).value()[0].bits;

    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = test::makeEngine(wat, cfg);
    uint64_t touched = 0;
    eng->probes().insertGlobal(makeProbe([&touched](ProbeContext& ctx) {
        auto acc = ctx.accessor();
        for (uint32_t i = 0; i < acc->numLocals(); i++) {
            touched ^= acc->getLocal(i).bits;
        }
        for (uint32_t i = 0; i < acc->numOperands(); i++) {
            touched ^= acc->getOperand(i).bits;
        }
    }));
    auto r = eng->callExport("f", args);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value()[0].bits, expected);
    EXPECT_NE(touched, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0u, 25u));

} // namespace
} // namespace wizpp
