/**
 * @file
 * Baseline tests: the static bytecode rewriter, the Wasabi-like
 * injector, the DBT simulation and the JVMTI-like agent must all
 * measure the same ground truth as the probe-based monitors, and must
 * preserve program semantics.
 */

#include "dbt/dbt.h"
#include "jvmti/jvmti.h"
#include "monitors/monitors.h"
#include "rewriter/rewriter.h"
#include "suites/suites.h"
#include "test_util.h"
#include "wasabi/wasabi.h"
#include "wasm/encoder.h"
#include "wasm/decoder.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::mustParse;
using test::run1;

const char* kLoopWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (if (i32.and (local.get $i) (i32.const 1))
        (then (local.set $acc (i32.add (local.get $acc) (i32.const 7)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $acc))
))";

std::unique_ptr<Engine>
engineFromModule(Module m, EngineConfig cfg = {})
{
    auto eng = std::make_unique<Engine>(cfg);
    auto lr = eng->loadModule(std::move(m));
    EXPECT_TRUE(lr.ok()) << (lr.ok() ? "" : lr.error().toString());
    auto ir = eng->instantiate();
    EXPECT_TRUE(ir.ok()) << (ir.ok() ? "" : ir.error().toString());
    return eng;
}

// ---- Bytecode rewriting ----

TEST(Rewriter, PreservesSemantics)
{
    Module m = mustParse(kLoopWat);
    auto rr = rewriteForCounting(m, RewriteKind::Hotness);
    ASSERT_TRUE(rr.ok()) << rr.error().toString();
    // The transformed module must still validate.
    auto v = validateModule(rr.value().module);
    ASSERT_TRUE(v.ok()) << v.error().toString();

    auto plain = makeEngine(kLoopWat);
    auto inst = engineFromModule(rr.value().module);
    EXPECT_EQ(run1(*plain, "f", {Value::makeI32(20)}).i32(),
              run1(*inst, "f", {Value::makeI32(20)}).i32());
}

TEST(Rewriter, HotnessCountsMatchProbeMonitor)
{
    Module m = mustParse(kLoopWat);
    auto rr = rewriteForCounting(m, RewriteKind::Hotness);
    ASSERT_TRUE(rr.ok());
    auto inst = engineFromModule(rr.value().module);
    run1(*inst, "f", {Value::makeI32(10)});
    auto counts = readCounters(inst->instance().memory, rr.value());
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;

    auto probed = makeEngine(kLoopWat);
    HotnessMonitor hot;
    probed->attachMonitor(&hot);
    run1(*probed, "f", {Value::makeI32(10)});
    // The static rewriter and the probe-based monitor count the same
    // dynamic instruction stream.
    EXPECT_EQ(total, hot.totalCount());

    // Per-site counts agree too.
    for (size_t i = 0; i < rr.value().sites.size(); i++) {
        auto [func, pc] = rr.value().sites[i];
        EXPECT_EQ(counts[i], hot.countAt(func, pc))
            << "site " << func << "+" << pc;
    }
}

TEST(Rewriter, BranchCountsMatchProbeMonitor)
{
    Module m = mustParse(kLoopWat);
    auto rr = rewriteForCounting(m, RewriteKind::Branch);
    ASSERT_TRUE(rr.ok());
    auto inst = engineFromModule(rr.value().module);
    run1(*inst, "f", {Value::makeI32(10)});
    auto counts = readCounters(inst->instance().memory, rr.value());
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;

    auto probed = makeEngine(kLoopWat);
    BranchMonitor mon;
    probed->attachMonitor(&mon);
    run1(*probed, "f", {Value::makeI32(10)});
    EXPECT_EQ(total, mon.totalFires());
}

TEST(Rewriter, RoundTripsThroughBinaryEncoding)
{
    Module m = mustParse(kLoopWat);
    auto rr = rewriteForCounting(m, RewriteKind::Hotness);
    ASSERT_TRUE(rr.ok());
    // Encode the rewritten module to .wasm bytes and decode it back —
    // the full static-instrumentation pipeline.
    auto bytes = encodeModule(rr.value().module);
    auto decoded = decodeModule(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.error().toString();
    auto inst = engineFromModule(decoded.take());
    EXPECT_EQ(run1(*inst, "f", {Value::makeI32(20)}).i32(), 70u);
}

TEST(Rewriter, WorksOnWholeCorpusProgram)
{
    const BenchProgram* p = findProgram("gemm");
    ASSERT_NE(p, nullptr);
    Module m = mustParse(p->wat);
    auto rr = rewriteForCounting(m, RewriteKind::Hotness);
    ASSERT_TRUE(rr.ok());
    ASSERT_TRUE(validateModule(rr.value().module).ok());
    auto plain = makeEngine(p->wat);
    auto inst = engineFromModule(rr.value().module);
    EXPECT_EQ(run1(*plain, "run", {Value::makeI32(1)}).bits,
              run1(*inst, "run", {Value::makeI32(1)}).bits);
}

// ---- Wasabi-like injection ----

TEST(Wasabi, HookEventsMatchGroundTruth)
{
    Module m = mustParse(kLoopWat);
    auto wr = wasabiInstrument(m, WasabiKind::Hotness);
    ASSERT_TRUE(wr.ok()) << wr.error().toString();
    ASSERT_TRUE(validateModule(wr.value().module).ok());

    WasabiHost host;
    EngineConfig cfg;
    auto eng = std::make_unique<Engine>(cfg);
    host.bind(&eng->imports());
    ASSERT_TRUE(eng->loadModule(std::move(wr.value().module)).ok());
    ASSERT_TRUE(eng->instantiate().ok());
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 35u);

    auto probed = makeEngine(kLoopWat);
    HotnessMonitor hot;
    probed->attachMonitor(&hot);
    run1(*probed, "f", {Value::makeI32(10)});
    EXPECT_EQ(host.instrEvents, hot.totalCount());
}

TEST(Wasabi, BranchHooksSeeConditions)
{
    Module m = mustParse(kLoopWat);
    auto wr = wasabiInstrument(m, WasabiKind::Branch);
    ASSERT_TRUE(wr.ok());
    ASSERT_TRUE(validateModule(wr.value().module).ok())
        << validateModule(wr.value().module).error().toString();

    WasabiHost host;
    uint64_t taken = 0, notTaken = 0;
    host.onBranch = [&](uint32_t, uint32_t, uint32_t cond) {
        (cond ? taken : notTaken)++;
    };
    auto eng = std::make_unique<Engine>(EngineConfig{});
    host.bind(&eng->imports());
    ASSERT_TRUE(eng->loadModule(std::move(wr.value().module)).ok());
    ASSERT_TRUE(eng->instantiate().ok());
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(10)}).i32(), 35u);

    auto probed = makeEngine(kLoopWat);
    BranchMonitor mon;
    probed->attachMonitor(&mon);
    run1(*probed, "f", {Value::makeI32(10)});
    uint64_t pTaken = 0, pNot = 0;
    for (const auto& s : mon.sites()) {
        pTaken += s.probe->taken;
        pNot += s.probe->notTaken;
    }
    EXPECT_EQ(taken, pTaken);
    EXPECT_EQ(notTaken, pNot);
}

TEST(Wasabi, IndexShiftingIsSound)
{
    // Calls, exports, elem segments and start must survive the shift.
    const char* wat = R"((module
      (type $fn (func (param i32) (result i32)))
      (table 1 funcref)
      (elem (i32.const 0) $id)
      (global $g (mut i32) (i32.const 0))
      (func $id (param $x i32) (result i32) (local.get $x))
      (func $setup (global.set $g (i32.const 9)))
      (start $setup)
      (func (export "f") (param $x i32) (result i32)
        (i32.add (global.get $g)
          (call_indirect (type $fn) (local.get $x) (i32.const 0))))
    ))";
    Module m = mustParse(wat);
    auto wr = wasabiInstrument(m, WasabiKind::Hotness);
    ASSERT_TRUE(wr.ok());
    WasabiHost host;
    auto eng = std::make_unique<Engine>(EngineConfig{});
    host.bind(&eng->imports());
    ASSERT_TRUE(eng->loadModule(std::move(wr.value().module)).ok());
    ASSERT_TRUE(eng->instantiate().ok());
    EXPECT_EQ(run1(*eng, "f", {Value::makeI32(33)}).i32(), 42u);
}

// ---- DBT simulation ----

TEST(Dbt, HotnessCountsMatchProbeMonitor)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, cfg);
    DbtInstrumenter dbt(*eng, DbtKind::Hotness);
    EXPECT_GT(dbt.numBlocks(), 0u);
    run1(*eng, "f", {Value::makeI32(10)});

    auto probed = makeEngine(kLoopWat);
    HotnessMonitor hot;
    probed->attachMonitor(&hot);
    run1(*probed, "f", {Value::makeI32(10)});
    // Per-instruction counting via per-block clean calls covers the
    // same dynamic stream.
    EXPECT_EQ(dbt.instructionsCounted(), hot.totalCount());
    EXPECT_GT(dbt.blocksExecuted(), 10u);
}

TEST(Dbt, BranchTalliesMatch)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = makeEngine(kLoopWat, cfg);
    DbtInstrumenter dbt(*eng, DbtKind::Branch);
    run1(*eng, "f", {Value::makeI32(10)});

    auto probed = makeEngine(kLoopWat);
    BranchMonitor mon;
    probed->attachMonitor(&mon);
    run1(*probed, "f", {Value::makeI32(10)});
    EXPECT_EQ(dbt.branchesTallied(), mon.totalFires());
}

// ---- JVMTI-like agent ----

TEST(Jvmti, MethodEntryCountsMatchEntryExitUtility)
{
    const BenchProgram& p = richardsProgram();
    EngineConfig cfg;
    auto agentEng = makeEngine(p.wat, cfg);
    MethodEntryAgent agent(*agentEng);
    run1(*agentEng, "run", {Value::makeI32(1)});
    EXPECT_GT(agent.totalEntries(), 50000u);

    // Ground truth: count function entries with plain pc-0 probes.
    auto plainEng = makeEngine(p.wat, cfg);
    uint64_t entries = 0;
    for (uint32_t f = 0; f < plainEng->numFuncs(); f++) {
        if (plainEng->funcState(f).decl->imported) continue;
        plainEng->probes().insertLocal(0 + f, 0,
            makeProbe([&entries](ProbeContext&) { entries++; }));
    }
    run1(*plainEng, "run", {Value::makeI32(1)});
    EXPECT_EQ(agent.totalEntries(), entries);

    // Per-method resolution worked.
    EXPECT_FALSE(agent.entryCounts().empty());
    EXPECT_GT(agent.entryCounts().count("hashStep"), 0u);
}

} // namespace
} // namespace wizpp
