/**
 * @file
 * Serving-runtime tests (docs/SERVING.md): the work-stealing
 * executor, the GenerationGate RCU primitive, and the InstancePool's
 * concurrency contract — exact fire counts under mid-flight fleet
 * attach/detach, per-instance trace byte-identity under concurrent
 * recording, and a generation-retirement stress test. This suite is
 * what the ThreadSanitizer preset (build-tsan) runs.
 */

#include "test_util.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "monitors/monitor.h"
#include "serve/executor.h"
#include "serve/pool.h"
#include "serve/rcu.h"
#include "suites/suites.h"
#include "trace/recorder.h"
#include "wasm/opcodes.h"

namespace wizpp {
namespace {

using serve::GenerationGate;
using serve::InstancePool;
using serve::PoolOptions;
using serve::WorkStealingExecutor;
using test::mustParse;

/** A counting loop: the probed instruction executes exactly n times. */
const char* kLoopWat = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $x (loop $t
      (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc) (i32.const 3)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $t)))
    (local.get $acc))
))";

// TSan's ~15x interpreter slowdown turns the release-sized traffic
// waves into ctest timeouts on small hosts, and the interleavings it
// checks don't need the volume — scale the heavy tests down under
// TSan only.
#if defined(__SANITIZE_THREAD__)
#  define WIZPP_TSAN_BUILD 1
#elif defined(__has_feature)
#  if __has_feature(thread_sanitizer)
#    define WIZPP_TSAN_BUILD 1
#  endif
#endif
#ifdef WIZPP_TSAN_BUILD
constexpr int kWave = 40;
#else
constexpr int kWave = 300;
#endif

std::shared_ptr<const ValidatedModule>
mustValidate(const std::string& wat)
{
    auto r = ValidatedModule::create(mustParse(wat));
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    return r.take();
}

/** First pc holding @p opcode in function 0 of a fresh engine. */
uint32_t
findOpcodePc(const std::string& wat, uint8_t opcode)
{
    auto eng = test::makeEngine(wat);
    FuncState& fs = eng->funcState(0);
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        if (fs.decl->code[pc] == opcode) return pc;
    }
    ADD_FAILURE() << "opcode not found";
    return 0;
}

// ---- Executor --------------------------------------------------------

TEST(Executor, RunsEverySubmittedTask)
{
    WorkStealingExecutor ex(4);
    ex.start();
    std::atomic<uint64_t> sum{0};
    for (int i = 1; i <= 1000; i++) {
        ex.submit([&sum, i](uint32_t) {
            sum.fetch_add((uint64_t)i, std::memory_order_relaxed);
        });
    }
    ex.drain();
    EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
    ex.stop();
}

TEST(Executor, StealsFromLoadedWorker)
{
    WorkStealingExecutor ex(4);
    ex.start();
    std::atomic<uint32_t> executedBy[4] = {};
    // Pile everything on worker 0; the others must steal to help.
    for (int i = 0; i < 400; i++) {
        ex.submitTo(0, [&executedBy](uint32_t w) {
            executedBy[w].fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        });
    }
    ex.drain();
    uint32_t total = 0;
    for (auto& c : executedBy) total += c.load();
    EXPECT_EQ(total, 400u);
    EXPECT_GT(ex.steals(), 0u);
    ex.stop();
}

TEST(Executor, QuiescentHookRunsWhileParked)
{
    std::atomic<uint64_t> quiescentCalls{0};
    serve::WorkerHooks hooks;
    hooks.onQuiescent = [&quiescentCalls](uint32_t) {
        quiescentCalls.fetch_add(1, std::memory_order_relaxed);
    };
    WorkStealingExecutor ex(2, hooks);
    ex.start();
    ex.drain();  // nothing queued
    uint64_t before = quiescentCalls.load();
    ex.wakeAll();  // parked workers must still pass through the hook
    for (int i = 0; i < 1000 && quiescentCalls.load() <= before; i++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(quiescentCalls.load(), before);
    ex.stop();
}

// ---- GenerationGate --------------------------------------------------

TEST(GenerationGate, PinUnpinPublish)
{
    GenerationGate gate(2);
    EXPECT_EQ(gate.current(), 1u);
    EXPECT_EQ(gate.pin(0), 1u);
    EXPECT_TRUE(gate.pinned(0));
    EXPECT_FALSE(gate.pinned(1));
    gate.unpin(0);
    EXPECT_FALSE(gate.pinned(0));
    EXPECT_EQ(gate.publish(), 2u);
    EXPECT_EQ(gate.current(), 2u);
    gate.synchronize(2);  // all quiescent: returns immediately
}

TEST(GenerationGate, SynchronizeWaitsForStaleReader)
{
    GenerationGate gate(1);
    std::atomic<bool> synced{false};

    // Reader pins the current generation, then a writer publishes.
    ASSERT_EQ(gate.pin(0), 1u);
    uint64_t g = gate.publish();

    std::thread writer([&] {
        gate.synchronize(g);
        synced.store(true, std::memory_order_release);
    });
    // The writer must not complete while the stale pin is held.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(synced.load(std::memory_order_acquire));
    gate.unpin(0);
    writer.join();
    EXPECT_TRUE(synced.load());

    // A reader pinned at the *new* generation does not block writers.
    EXPECT_EQ(gate.pin(0), g);
    gate.synchronize(g);
    gate.unpin(0);
}

// ---- InstancePool: basics --------------------------------------------

TEST(InstancePool, ServesConcurrentInvocations)
{
    InstancePool pool(mustValidate(kLoopWat), EngineConfig{},
                     PoolOptions{4});
    ASSERT_TRUE(pool.start().ok());
    std::atomic<uint64_t> wrong{0};
    for (int i = 0; i < 2000; i++) {
        pool.submit(0, {Value::makeI32(10)},
                    [&wrong](uint32_t, const Result<std::vector<Value>>&
                                           r) {
                        if (!r.ok() || r.value()[0].i32() != 30u) {
                            wrong.fetch_add(1,
                                            std::memory_order_relaxed);
                        }
                    });
    }
    pool.drain();
    EXPECT_EQ(wrong.load(), 0u);
    EXPECT_EQ(pool.invocations(), 2000u);
    EXPECT_EQ(pool.traps(), 0u);
    EXPECT_GT(pool.latencyQuantileUs(0.5), 0u);
    pool.stop();
}

TEST(InstancePool, EachWorkerHasIsolatedMemory)
{
    // Each instance must own its linear memory: a counter in memory
    // bumped per invocation stays per-worker, never shared.
    const char* wat = R"((module
      (memory 1)
      (func (export "bump") (result i32)
        (i32.store (i32.const 0)
                   (i32.add (i32.load (i32.const 0)) (i32.const 1)))
        (i32.load (i32.const 0)))
    ))";
    InstancePool pool(mustValidate(wat), EngineConfig{},
                     PoolOptions{4});
    ASSERT_TRUE(pool.start().ok());
    for (int i = 0; i < 800; i++) pool.submit(0, {});
    pool.drain();
    pool.stop();
    // Per-worker: memory counter == that worker's invocation count.
    uint64_t total = 0;
    for (uint32_t w = 0; w < pool.workers(); w++) {
        Engine& eng = pool.workerEngine(w);
        uint32_t inMemory = 0;
        std::memcpy(&inMemory, eng.instance().memory.data(), 4);
        EXPECT_EQ(inMemory, pool.workerStats(w).invocations.load());
        total += inMemory;
    }
    EXPECT_EQ(total, 800u);
}

// ---- InstancePool: RCU fleet instrumentation -------------------------

/**
 * The satellite-task core: batch attach + detach mid-flight while 8
 * workers execute a corpus program. Fire counts must be *exact*: each
 * invocation runs either fully instrumented or fully uninstrumented
 * (applies happen only at quiescent points), so every worker's count
 * is exactly perInvocationFires x its instrumented invocations — no
 * lost fires, no double fires, no torn fused lists.
 */
TEST(InstancePool, MidFlightFleetAttachDetachExactFireCounts)
{
    const BenchProgram* prog = findProgram("gemm");
    ASSERT_NE(prog, nullptr);
    const int n = 4;

    // Reference: per-invocation fires at the probed pc, single engine.
    uint32_t pc = 0;
    uint64_t perInvocation = 0;
    {
        auto eng = test::makeEngine(prog->wat);
        int32_t f = eng->findFunc(prog->entry);
        ASSERT_GE(f, 0);
        FuncState& fs = eng->funcState((uint32_t)f);
        pc = fs.sideTable.instrBoundaries.at(1);
        auto probe = std::make_shared<CountProbe>();
        ASSERT_TRUE(
            eng->probes().insertLocal((uint32_t)f, pc, probe));
        ASSERT_TRUE(
            eng->callExport(prog->entry, {Value::makeI32(n)}).ok());
        perInvocation = probe->count;
        ASSERT_GT(perInvocation, 0u);
    }

    InstancePool pool(mustValidate(prog->wat), EngineConfig{},
                     PoolOptions{8});
    ASSERT_TRUE(pool.start().ok());
    int32_t f = pool.findFunc(prog->entry);
    ASSERT_GE(f, 0);

    auto submitSome = [&](int count) {
        for (int i = 0; i < count; i++) {
            pool.submit((uint32_t)f, {Value::makeI32(n)});
        }
    };

    submitSome(kWave);  // uninstrumented traffic in flight
    uint64_t batch = pool.attachEach(
        [f, pc](Engine&, uint32_t) {
            std::vector<ProbeManager::SiteProbe> probes;
            probes.push_back({(uint32_t)f, pc,
                              std::make_shared<CountProbe>()});
            return probes;
        });
    submitSome(kWave);  // instrumented traffic
    pool.drain();     // detach must not overtake the queued wave
    pool.detachBatch(batch);
    submitSome(kWave);  // uninstrumented again
    pool.drain();
    pool.stop();

    uint64_t totalInstrumented = 0;
    for (uint32_t w = 0; w < pool.workers(); w++) {
        const auto& probes = pool.attachedProbes(batch, w);
        ASSERT_EQ(probes.size(), 1u);
        auto* cp = static_cast<CountProbe*>(probes[0].probe.get());
        uint64_t instrInvocations =
            pool.workerStats(w).instrumentedInvocations.load();
        // Exactness: fires are a whole multiple of one invocation's
        // fires, and the multiple is the worker's own instrumented
        // invocation count.
        EXPECT_EQ(cp->count, perInvocation * instrInvocations)
            << "worker " << w;
        totalInstrumented += instrInvocations;
    }
    // The attach returned only after every worker applied, before the
    // second wave was submitted; the detach covered the rest. So the
    // instrumented window saw at least the middle wave.
    EXPECT_GE(totalInstrumented, (uint64_t)kWave);
    EXPECT_EQ(pool.invocations(), (uint64_t)(3 * kWave));
    EXPECT_EQ(pool.traps(), 0u);
}

/**
 * Concurrent recording: every worker records one invocation of the
 * same deterministic program at the same probe points, all at the
 * same time. Per-instance traces must be byte-identical — instance
 * isolation means concurrency cannot leak into recorded streams.
 */
TEST(InstancePool, TraceByteIdentityAcrossInstances)
{
    const BenchProgram* prog = findProgram("gemm");
    ASSERT_NE(prog, nullptr);
    const int n = 4;

    InstancePool pool(mustValidate(prog->wat), EngineConfig{},
                     PoolOptions{8});
    ASSERT_TRUE(pool.start().ok());
    int32_t f = pool.findFunc(prog->entry);
    ASSERT_GE(f, 0);

    // Warm traffic so recording happens on busy, tiered-up engines.
    for (int i = 0; i < 200; i++) {
        pool.submit((uint32_t)f, {Value::makeI32(n)});
    }
    pool.drain();

    std::vector<std::vector<uint8_t>> traces(pool.workers());
    pool.applyEach([&traces, prog, f, n](Engine& eng, uint32_t w) {
        TraceRecorder rec;
        eng.attachMonitor(&rec);
        FuncState& fs = eng.funcState((uint32_t)f);
        ASSERT_GE(fs.sideTable.instrBoundaries.size(), 3u);
        rec.addProbePoint((uint32_t)f,
                          fs.sideTable.instrBoundaries.at(1));
        rec.addProbePoint((uint32_t)f,
                          fs.sideTable.instrBoundaries.at(2));
        std::vector<Value> args = {Value::makeI32(n)};
        rec.setInvocation(prog->entry, args);
        auto r = eng.callExport(prog->entry, args);
        ASSERT_TRUE(r.ok());
        rec.finish(TrapReason::None, r.value());
        traces[w] = rec.bytes();
        // Restore: drop the recorder's probes before more traffic.
        eng.probes().removeAllLocal(
            (uint32_t)f, fs.sideTable.instrBoundaries.at(1));
        eng.probes().removeAllLocal(
            (uint32_t)f, fs.sideTable.instrBoundaries.at(2));
    });
    pool.stop();

    ASSERT_FALSE(traces[0].empty());
    for (uint32_t w = 1; w < pool.workers(); w++) {
        EXPECT_EQ(traces[w], traces[0]) << "worker " << w;
    }
}

/**
 * Generation-retirement stress: hammer attach/detach cycles against
 * live traffic and assert the retirement pipeline reclaims every
 * superseded snapshot except the trailing one (whose grace period
 * ends at the next publication) — with the unconditional canary check
 * in the reader path proving no apply pass ever touched a reclaimed
 * snapshot (no use-after-retire of published op lists or the fused
 * site lists they rebuild).
 */
TEST(InstancePool, GenerationRetirementStress)
{
    InstancePool pool(mustValidate(kLoopWat), EngineConfig{},
                     PoolOptions{8});
    ASSERT_TRUE(pool.start().ok());
    uint32_t pc = findOpcodePc(kLoopWat, OP_I32_CONST);

    std::atomic<bool> stopTraffic{false};
    std::thread traffic([&] {
        while (!stopTraffic.load(std::memory_order_acquire)) {
            for (int i = 0; i < 64; i++) {
                pool.submit(0, {Value::makeI32(64)});
            }
            pool.drain();
        }
    });

    const int kCycles = 50;
    for (int c = 0; c < kCycles; c++) {
        uint64_t batch = pool.attachEach([pc](Engine&, uint32_t) {
            std::vector<ProbeManager::SiteProbe> probes;
            probes.push_back(
                {0, pc, std::make_shared<CountProbe>()});
            return probes;
        });
        pool.detachBatch(batch);
    }
    stopTraffic.store(true, std::memory_order_release);
    traffic.join();
    pool.drain();

    // Every cycle publishes two ops; each publication retires the
    // previous snapshot and each wait retires a compacted one. All
    // but the most recent compaction (grace period still open) must
    // be reclaimed.
    EXPECT_EQ(pool.snapshotsRetired(), (uint64_t)kCycles * 4);
    EXPECT_EQ(pool.snapshotsFreed(), pool.snapshotsRetired() - 1);
    EXPECT_EQ(pool.gate().current(), 1u + (uint64_t)kCycles * 2);

    // Fleet is clean: no probes left anywhere, every batch applied.
    for (uint32_t w = 0; w < pool.workers(); w++) {
        EXPECT_EQ(pool.workerEngine(w).probes().numProbedSites(), 0u);
        EXPECT_EQ(pool.workerStats(w).batchesApplied.load(),
                  (uint64_t)kCycles * 2);
    }
    pool.stop();
}

/** Fleet ops on an idle (fully parked) pool still complete promptly. */
TEST(InstancePool, IdleFleetAttachCompletes)
{
    InstancePool pool(mustValidate(kLoopWat), EngineConfig{},
                     PoolOptions{4});
    ASSERT_TRUE(pool.start().ok());
    uint32_t pc = findOpcodePc(kLoopWat, OP_I32_CONST);
    // No traffic at all: workers are parked. wakeAll inside the
    // writer must still bound the grace period.
    uint64_t batch = pool.attachEach([pc](Engine&, uint32_t) {
        std::vector<ProbeManager::SiteProbe> probes;
        probes.push_back({0, pc, std::make_shared<CountProbe>()});
        return probes;
    });
    for (int i = 0; i < 100; i++) pool.submit(0, {Value::makeI32(7)});
    pool.drain();
    pool.detachBatch(batch);
    uint64_t fires = 0;
    for (uint32_t w = 0; w < pool.workers(); w++) {
        const auto& probes = pool.attachedProbes(batch, w);
        ASSERT_EQ(probes.size(), 1u);
        fires +=
            static_cast<CountProbe*>(probes[0].probe.get())->count;
    }
    // Every invocation ran instrumented: 7 loop iterations each.
    EXPECT_EQ(fires, 700u);
    pool.stop();
}

/**
 * Concurrent metrics-registry use: workers snapshotting while another
 * thread re-registers callbacks — the TSan target for the
 * MetricsRegistry callback fix.
 */
TEST(Metrics, CallbackRegistrationRacesSnapshot)
{
    obs::MetricsRegistry reg;
    reg.counter("c").inc(41);
    std::atomic<bool> stop{false};
    std::thread registrar([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
            reg.registerCallback("cb", [i] { return i; });
            i++;
        }
    });
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            auto snap = reg.snapshot();
            EXPECT_EQ(snap.at("c"), 41.0);
        }
    });
    // A callback that itself takes the registry lock must not
    // deadlock (callbacks are invoked outside the lock).
    reg.registerCallback("self",
                         [&reg] { return reg.counter("c").value(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true, std::memory_order_release);
    registrar.join();
    reader.join();
    EXPECT_EQ(reg.value("self"), 41.0);
}

} // namespace
} // namespace wizpp
