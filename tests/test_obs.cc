/**
 * @file
 * The observability layer (docs/OBSERVABILITY.md): metrics registry
 * semantics and concurrency, timeline structural validation over the
 * corpus (including a trapping run), and sampling-profiler folded
 * parity across every dispatch backend and execution tier.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "suites/suites.h"
#include "test_util.h"

namespace wizpp {
namespace {

using test::makeEngine;
using test::modeName;
using test::mustParse;
using test::run1;

// ---------------------------------------------------------------- registry

TEST(Metrics, CounterGaugeHistogramBasics)
{
    obs::MetricsRegistry reg;
    obs::Counter& c = reg.counter("a.count");
    c++;
    ++c;
    c += 40;
    EXPECT_EQ(42u, c.value());
    EXPECT_EQ(42u, reg.value("a.count"));

    obs::Gauge& g = reg.gauge("a.gauge");
    g.set(7);
    g.add(-3);
    EXPECT_EQ(4, g.value());

    obs::Histogram& h = reg.histogram("a.lat_us");
    for (uint64_t v : {1u, 2u, 4u, 100u, 1000u}) h.record(v);
    EXPECT_EQ(5u, h.count());
    EXPECT_EQ(1107u, h.sum());
    // Quantiles report bucket upper bounds: monotone in q.
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(Metrics, ReferencesAreStableAcrossRegistrations)
{
    obs::MetricsRegistry reg;
    obs::Counter& first = reg.counter("stable");
    first += 5;
    // Registering many more metrics must not move the first one.
    for (int i = 0; i < 100; i++) {
        reg.counter("filler." + std::to_string(i));
    }
    obs::Counter& again = reg.counter("stable");
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(5u, first.value());
}

TEST(Metrics, CallbacksArePulledIntoSnapshots)
{
    obs::MetricsRegistry reg;
    uint64_t source = 123;
    reg.registerCallback("pulled", [&source] { return source; });
    EXPECT_EQ(123u, reg.value("pulled"));
    source = 456;  // pull model: reads see the live value
    EXPECT_EQ(456u, reg.value("pulled"));
}

TEST(Metrics, WriteFormats)
{
    obs::MetricsRegistry reg;
    reg.counter("z.count") += 3;
    reg.counter("a.count") += 1;

    std::ostringstream text;
    reg.write(text, obs::MetricsFormat::Text);
    // Sorted by name, one `name value` line each.
    EXPECT_EQ("a.count 1\nz.count 3\n", text.str());

    std::ostringstream json;
    reg.write(json, obs::MetricsFormat::Json);
    EXPECT_NE(std::string::npos, json.str().find("\"a.count\": 1"));
    EXPECT_EQ('{', json.str().front());
    EXPECT_EQ('\n', json.str().back());

    std::ostringstream csv;
    reg.write(csv, obs::MetricsFormat::Csv);
    EXPECT_EQ(0u, csv.str().rfind("metric,value\n", 0));
    EXPECT_NE(std::string::npos, csv.str().find("z.count,3"));
}

TEST(Metrics, ParseFormat)
{
    obs::MetricsFormat f;
    EXPECT_TRUE(obs::parseMetricsFormat("", &f));
    EXPECT_EQ(obs::MetricsFormat::Text, f);
    EXPECT_TRUE(obs::parseMetricsFormat("json", &f));
    EXPECT_EQ(obs::MetricsFormat::Json, f);
    EXPECT_TRUE(obs::parseMetricsFormat("csv", &f));
    EXPECT_EQ(obs::MetricsFormat::Csv, f);
    EXPECT_FALSE(obs::parseMetricsFormat("xml", &f));
}

/** The lock-free-counter contract, held under ASan/real threads: N
    threads hammering shared counters and histograms lose no updates. */
TEST(Metrics, ConcurrencySmoke)
{
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr uint64_t kIters = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&reg, t] {
            // Half the threads also register fresh metrics while the
            // others increment — registration is mutex-guarded and
            // must not invalidate outstanding references.
            obs::Counter& c = reg.counter("mt.count");
            obs::Histogram& h = reg.histogram("mt.lat");
            for (uint64_t i = 0; i < kIters; i++) {
                c++;
                h.record(i & 0xff);
                if ((i & 0x3ff) == 0) {
                    reg.counter("mt.thread." + std::to_string(t))++;
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(kThreads * kIters, reg.value("mt.count"));
    EXPECT_EQ(kThreads * kIters, reg.histogram("mt.lat").count());
}

// ------------------------------------------------- engine stats promotion

TEST(Metrics, EngineStatsAreRegistryCounters)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = makeEngine(
        "(module (func (export \"run\") (result i32) (i32.const 7)))",
        cfg);
    run1(*eng, "run");
    // The legacy stats fields and the registry are one storage.
    EXPECT_EQ(eng->stats.functionsCompiled.value(),
              eng->metrics().value("engine.functions_compiled"));
    EXPECT_GE(eng->metrics().value("engine.functions_compiled"), 1u);
    // Hot-path probe counters surface through pull callbacks.
    EXPECT_EQ(eng->probes().localFireCount,
              eng->metrics().value("probes.local_fires"));
}

// ---------------------------------------------------------------- timeline

/** Structural validation of one timeline: monotonic timestamps and
    strict B/E stack discipline (every E closes the innermost open B
    of the same name, nothing left open). */
void
validateTimeline(const obs::Timeline& tl, const std::string& label)
{
    uint64_t lastTs = 0;
    std::vector<std::string> open;
    for (const obs::TimelineEvent& e : tl.events()) {
        EXPECT_GE(e.tsMicros, lastTs) << label << ": ts not monotonic";
        lastTs = e.tsMicros;
        if (e.phase == 'B') {
            open.push_back(e.name);
        } else if (e.phase == 'E') {
            ASSERT_FALSE(open.empty())
                << label << ": E '" << e.name << "' with no open span";
            EXPECT_EQ(open.back(), e.name)
                << label << ": spans must close innermost-first";
            open.pop_back();
        } else {
            EXPECT_EQ('i', e.phase) << label;
        }
    }
    EXPECT_TRUE(open.empty())
        << label << ": " << open.size() << " span(s) left open";
}

/** A deliberately minimal JSON well-formedness scan (balanced braces
    and brackets outside strings, legal escapes) — enough to catch a
    broken emitter without a JSON library in the test deps. */
void
expectWellFormedJson(const std::string& s, const std::string& label)
{
    int depth = 0;
    bool inString = false;
    bool escaped = false;
    for (char ch : s) {
        if (inString) {
            if (escaped) escaped = false;
            else if (ch == '\\') escaped = true;
            else if (ch == '"') inString = false;
            continue;
        }
        if (ch == '"') inString = true;
        else if (ch == '{' || ch == '[') depth++;
        else if (ch == '}' || ch == ']') {
            depth--;
            EXPECT_GE(depth, 0) << label << ": unbalanced JSON";
        }
    }
    EXPECT_FALSE(inString) << label << ": unterminated string";
    EXPECT_EQ(0, depth) << label << ": unbalanced JSON";
    EXPECT_EQ(0u, s.rfind("{\"traceEvents\": [", 0)) << label;
}

TEST(Timeline, CorpusProgramsProduceValidTimelines)
{
    // Five corpus programs spanning all three suites.
    const char* kPrograms[] = {"gemm", "trisolv", "richards", "crc",
                               "siphashx24"};
    for (const char* name : kPrograms) {
        const BenchProgram* p = findProgram(name);
        ASSERT_NE(nullptr, p) << name;

        obs::Timeline tl;
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        eng.setTimeline(&tl);
        ASSERT_TRUE(eng.loadModule(mustParse(p->wat)).ok()) << name;
        ASSERT_TRUE(eng.instantiate().ok()) << name;
        auto r = eng.callExport(p->entry,
                                {Value::makeI32(p->defaultN)});
        ASSERT_TRUE(r.ok()) << name;

        validateTimeline(tl, name);

        // The span taxonomy holds: a validate span, per-function
        // compile spans, and a successful execute span.
        size_t compiles = 0;
        bool sawValidate = false;
        bool sawExecuteOk = false;
        for (const obs::TimelineEvent& e : tl.events()) {
            if (e.name == "module.validate") sawValidate = true;
            if (e.name == "jit.compile" && e.phase == 'B') compiles++;
            if (e.name == "engine.execute" && e.phase == 'E') {
                for (const auto& [k, v] : e.args) {
                    if (k == "outcome") {
                        EXPECT_EQ("ok", v) << name;
                        sawExecuteOk = true;
                    }
                }
            }
        }
        EXPECT_TRUE(sawValidate) << name;
        EXPECT_TRUE(sawExecuteOk) << name;
        EXPECT_GE(compiles, 1u) << name;

        std::ostringstream out;
        tl.writeJson(out);
        expectWellFormedJson(out.str(), name);
    }
}

TEST(Timeline, TrappingRunStillClosesEverySpan)
{
    obs::Timeline tl;
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    Engine eng(cfg);
    eng.setTimeline(&tl);
    ASSERT_TRUE(eng.loadModule(mustParse(
        "(module (func (export \"run\") (result i32)\n"
        "  (unreachable)))")).ok());
    ASSERT_TRUE(eng.instantiate().ok());
    auto r = eng.callExport("run", {});
    ASSERT_FALSE(r.ok());

    validateTimeline(tl, "trap");
    bool sawTrapInstant = false;
    bool sawExecuteTrap = false;
    for (const obs::TimelineEvent& e : tl.events()) {
        if (e.name == "trap" && e.phase == 'i') sawTrapInstant = true;
        if (e.name == "engine.execute" && e.phase == 'E') {
            for (const auto& [k, v] : e.args) {
                if (k == "outcome" && v == "trap") sawExecuteTrap = true;
            }
        }
    }
    EXPECT_TRUE(sawTrapInstant);
    EXPECT_TRUE(sawExecuteTrap);

    std::ostringstream out;
    tl.writeJson(out);
    expectWellFormedJson(out.str(), "trap");
}

TEST(Timeline, JsonStringsAreEscaped)
{
    obs::Timeline tl;
    tl.instant("weird\"name\\with\ncontrol\tchars",
               {{"k", std::string("v\x01", 2)}});
    std::ostringstream out;
    tl.writeJson(out);
    expectWellFormedJson(out.str(), "escaping");
    EXPECT_NE(std::string::npos, out.str().find("\\\"name\\\\with\\n"));
    EXPECT_NE(std::string::npos, out.str().find("\\u0001"));
}

TEST(Timeline, DisabledTimelineCostsNothingAndBreaksNothing)
{
    // The null-timeline idiom used on every instrumented path.
    obs::Timeline::Span span(nullptr, "never.emitted");
    span.close({{"ignored", "yes"}});

    // An engine without a timeline runs every instrumented path.
    auto eng = makeEngine(
        "(module (func (export \"run\") (result i32) (i32.const 1)))");
    EXPECT_EQ(nullptr, eng->timeline());
    EXPECT_EQ(1, run1(*eng, "run").i32());
}

// ---------------------------------------------------------------- profiler

/** Folded profiler output for one (backend, mode) combination. */
std::string
foldedFor(const BenchProgram& p, DispatchBackend backend, ExecMode mode)
{
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.dispatch = backend;
    cfg.tierUpThreshold = 2;
    Engine eng(cfg);
    obs::SamplingProfiler::Options opts;
    opts.budget = 64;
    obs::SamplingProfiler prof(opts);
    auto lr = eng.loadModule(mustParse(p.wat));
    EXPECT_TRUE(lr.ok());
    eng.attachMonitor(&prof);
    auto ir = eng.instantiate();
    EXPECT_TRUE(ir.ok());
    auto r = eng.callExport(p.entry, {Value::makeI32(p.defaultN)});
    EXPECT_TRUE(r.ok());
    EXPECT_GT(prof.sampleCount(), 0u);
    std::ostringstream out;
    prof.writeFolded(out);
    return out.str();
}

/** The profiler's budget counts probe fires — deterministic events —
    so folded output is byte-identical across every dispatch backend
    and every execution tier (the cross-tier consistency argument of
    the paper, applied to the profiler). */
TEST(Profiler, FoldedParityAcrossBackendsAndTiers)
{
    const BenchProgram* p = findProgram("trisolv");
    ASSERT_NE(nullptr, p);

    const DispatchBackend backends[] = {DispatchBackend::Table,
                                        DispatchBackend::Switch,
                                        DispatchBackend::Threaded};
    const ExecMode modes[] = {ExecMode::Interpreter, ExecMode::Jit,
                              ExecMode::Tiered};
    std::string golden;
    for (DispatchBackend b : backends) {
        for (ExecMode m : modes) {
            std::string folded = foldedFor(*p, b, m);
            if (golden.empty()) {
                golden = folded;
                EXPECT_FALSE(golden.empty());
                continue;
            }
            EXPECT_EQ(golden, folded)
                << "backend " << dispatchBackendName(b) << ", mode "
                << modeName(m);
        }
    }
}

TEST(Profiler, BudgetControlsSampleRate)
{
    const BenchProgram* p = findProgram("gemm");
    ASSERT_NE(nullptr, p);

    for (uint64_t budget : {64u, 1024u}) {
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        Engine eng(cfg);
        obs::SamplingProfiler::Options opts;
        opts.budget = budget;
        obs::SamplingProfiler prof(opts);
        ASSERT_TRUE(eng.loadModule(mustParse(p->wat)).ok());
        eng.attachMonitor(&prof);
        ASSERT_TRUE(eng.instantiate().ok());
        ASSERT_TRUE(
            eng.callExport(p->entry, {Value::makeI32(p->defaultN)})
                .ok());
        // Samples are taken exactly every `budget` fires.
        EXPECT_EQ(prof.fireCount() / budget, prof.sampleCount())
            << "budget " << budget;
        EXPECT_GT(prof.perFireNanos(), 0.0);
    }
}

TEST(Profiler, ReportAttributesLoweringKinds)
{
    const BenchProgram* p = findProgram("gemm");
    ASSERT_NE(nullptr, p);
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    Engine eng(cfg);
    obs::SamplingProfiler::Options opts;
    opts.budget = 128;
    obs::SamplingProfiler prof(opts);
    ASSERT_TRUE(eng.loadModule(mustParse(p->wat)).ok());
    eng.attachMonitor(&prof);
    ASSERT_TRUE(eng.instantiate().ok());
    ASSERT_TRUE(
        eng.callExport(p->entry, {Value::makeI32(p->defaultN)}).ok());

    std::ostringstream out;
    prof.report(out);
    // The self-attribution table names the lowering kind the JIT chose
    // for the profiler's own sites (Full frame access => generic).
    EXPECT_NE(std::string::npos, out.str().find("generic"));
    EXPECT_NE(std::string::npos,
              out.str().find("probe-fire cost by lowering kind"));
}

} // namespace
} // namespace wizpp
