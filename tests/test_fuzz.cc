/**
 * @file
 * Fuzzing-subsystem tests (docs/FUZZING.md): one-shot CoverageProbe
 * semantics across every dispatch backend and tier (fires exactly
 * once, batched self-detach, re-attach re-lowering, intrinsified vs
 * generic lowering, the listener-mutates-instrumentation deopt path),
 * coverage/edge parity against the trace sidecar, shake determinism
 * (same seed ⇒ byte-identical WZTR across tiers; grow-fault,
 * short-read and memory-seed injection), delta-minimization (unit and
 * the planted-divergence ≤10%-of-trace acceptance criterion), the
 * coverage-guided fuzzer's determinism and planted-trap discovery,
 * and reproducer round-trip + cross-tier verification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fuzz/coverage.h"
#include "fuzz/fuzzer.h"
#include "fuzz/minimize.h"
#include "fuzz/repro.h"
#include "fuzz/rng.h"
#include "fuzz/shake.h"
#include "test_util.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/sidecar.h"

using namespace wizpp;
using namespace wizpp::fuzz;
using wizpp::test::modeName;
using wizpp::test::mustParse;

namespace {

/** A loop with an exit branch: one br_if site that goes both ways. */
const char* kLoopWat = R"((module
  (memory 1)
  (func (export "run") (param i32) (result i32)
    (local i32 i32)
    (block
      (loop
        (br_if 1 (i32.ge_u (local.get 1) (local.get 0)))
        (local.set 2 (i32.add (local.get 2) (local.get 1)))
        (local.set 1 (i32.add (local.get 1) (i32.const 1)))
        (br 0)))
    (local.get 2)))
)";

/** Two host reads of the requested length (short-read shape). */
const char* kReadWat = R"((module
  (import "env" "read" (func $read (param i32) (result i32)))
  (func (export "run") (param i32) (result i32)
    (i32.add (call $read (local.get 0)) (call $read (local.get 0)))))
)";

/** Traps iff a grow-fault plan fails the grow. */
const char* kGrowWat = R"((module
  (memory 1)
  (func (export "run") (param i32) (result i32)
    (if (i32.eq (memory.grow (local.get 0)) (i32.const -1))
      (then (unreachable)))
    (memory.size)))
)";

/** Calls step(i) every iteration: the planted-divergence vehicle. */
const char* kStepWat = R"((module
  (import "env" "step" (func $step (param i32) (result i32)))
  (func (export "run") (param i32) (result i32)
    (local i32 i32)
    (block
      (loop
        (br_if 1 (i32.ge_u (local.get 1) (local.get 0)))
        (local.set 2 (i32.add (local.get 2)
                              (call $step (local.get 1))))
        (local.set 1 (i32.add (local.get 1) (i32.const 1)))
        (br 0)))
    (local.get 2)))
)";

/** The full mode × dispatch-backend matrix (3 tiers × 3 backends). */
struct MatrixConfig
{
    EngineConfig cfg;
    std::string name;
};

std::vector<MatrixConfig>
fullMatrix()
{
    std::vector<MatrixConfig> out;
    for (EngineConfig base : test::allModes()) {
        for (DispatchBackend b : {DispatchBackend::Table,
                                  DispatchBackend::Switch,
                                  DispatchBackend::Threaded}) {
            if (b == DispatchBackend::Threaded &&
                !threadedDispatchSupported()) {
                continue;
            }
            EngineConfig cfg = base;
            cfg.dispatch = b;
            out.push_back({cfg, std::string(modeName(cfg.mode)) + "/" +
                                    dispatchBackendName(b)});
        }
    }
    return out;
}

Trace
mustRead(const std::vector<uint8_t>& bytes)
{
    auto r = readTrace(bytes);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    return r.ok() ? r.take() : Trace{};
}

/** Counts onCovered notifications per (func, pc). */
class CountingListener : public CoverageProbe::Listener
{
  public:
    void
    onCovered(CoverageProbe& p) override
    {
        hits[{p.funcIndex, p.pc}]++;
    }
    std::map<std::pair<uint32_t, uint32_t>, int> hits;
};

} // namespace

// ---------------------------------------------------------------------
// CoverageProbe unit semantics
// ---------------------------------------------------------------------

TEST(CoverageProbeUnit, RecordHitIsIdempotentAndNotifiesOnce)
{
    CountingListener l;
    CoverageProbe p(3, 7, &l);
    EXPECT_FALSE(p.hit());
    p.recordHit();
    p.recordHit();
    p.recordHit();
    EXPECT_TRUE(p.hit());
    EXPECT_EQ(1, (l.hits[{3u, 7u}]));
}

TEST(CoverageProbeUnit, DiscriminatorAndFrameAccess)
{
    CoverageProbe p(0, 0);
    EXPECT_TRUE(p.isCoverageProbe());
    EXPECT_FALSE(p.isCountProbe());
    EXPECT_EQ(FrameAccess::None, p.frameAccess());
}

TEST(FuzzRng, DeterministicAndSaltSeparated)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 16; i++) EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 16; i++) differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
    EXPECT_NE(Rng::derive(1, 1).next(), Rng::derive(1, 2).next());
    EXPECT_EQ(0u, Rng(1).below(0));
}

TEST(FailureSignatureUnit, ToStringParseRoundTrip)
{
    for (const char* s : {"none", "divergence"}) {
        FailureSignature sig;
        ASSERT_TRUE(FailureSignature::parse(s, &sig)) << s;
        EXPECT_EQ(s, sig.toString());
    }
    FailureSignature trap;
    trap.kind = FailureSignature::Kind::Trap;
    trap.trap = TrapReason::DivByZero;
    FailureSignature parsed;
    ASSERT_TRUE(FailureSignature::parse(trap.toString(), &parsed));
    EXPECT_TRUE(parsed.matches(trap));
    EXPECT_EQ(TrapReason::DivByZero, parsed.trap);
    EXPECT_FALSE(FailureSignature::parse("trap:bogus", &parsed));
}

// ---------------------------------------------------------------------
// One-shot coverage across the full dispatch × tier matrix
// ---------------------------------------------------------------------

class CoverageMatrix : public ::testing::TestWithParam<MatrixConfig>
{};

TEST_P(CoverageMatrix, FiresExactlyOnceThenBatchDetaches)
{
    const MatrixConfig& mc = GetParam();
    auto eng = std::make_unique<Engine>(mc.cfg);
    ASSERT_TRUE(eng->loadModule(mustParse(kLoopWat)).ok());
    CoverageIndex cov;
    cov.attach(*eng);
    ASSERT_TRUE(eng->instantiate().ok());

    // A loop of 8 iterations executes every covered site many times,
    // but each location bit reports exactly once.
    Value r = test::run1(*eng, "run", {Value::makeI32(8)});
    EXPECT_EQ(28u, static_cast<uint32_t>(r.bits)) << mc.name;
    size_t covered = cov.sitesCovered();
    EXPECT_GT(covered, 0u) << mc.name;
    EXPECT_EQ(2u, cov.edgesCovered()) << mc.name;  // br_if both ways

    // A second run adds nothing: every probe already fired.
    cov.resetNewHits();
    test::run1(*eng, "run", {Value::makeI32(8)});
    EXPECT_EQ(0u, cov.newHits()) << mc.name;
    EXPECT_EQ(covered, cov.sitesCovered()) << mc.name;

    // flush() batch-detaches everything saturated; execution still
    // works and coverage is remembered.
    EXPECT_GT(cov.flush(), 0u) << mc.name;
    r = test::run1(*eng, "run", {Value::makeI32(8)});
    EXPECT_EQ(28u, static_cast<uint32_t>(r.bits)) << mc.name;
    EXPECT_EQ(covered, cov.sitesCovered()) << mc.name;
    EXPECT_EQ(0u, cov.flush()) << mc.name;  // nothing left to detach
}

TEST_P(CoverageMatrix, ReattachAfterFlushRelowersAndFiresAgain)
{
    const MatrixConfig& mc = GetParam();
    auto eng = std::make_unique<Engine>(mc.cfg);
    ASSERT_TRUE(eng->loadModule(mustParse(kLoopWat)).ok());
    CoverageIndex first;
    first.attach(*eng);
    ASSERT_TRUE(eng->instantiate().ok());
    test::run1(*eng, "run", {Value::makeI32(4)});
    std::vector<std::pair<uint32_t, uint32_t>> sites =
        first.coveredSites();
    ASSERT_FALSE(sites.empty());
    first.flush();

    // A fresh index on the now-clean code re-lowers the same sites and
    // observes the same coverage, once each.
    CoverageIndex second;
    second.attach(*eng);
    test::run1(*eng, "run", {Value::makeI32(4)});
    EXPECT_EQ(sites, second.coveredSites()) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTiersAllBackends, CoverageMatrix,
    ::testing::ValuesIn(fullMatrix()),
    [](const ::testing::TestParamInfo<MatrixConfig>& info) {
        std::string n = info.param.name;
        std::replace(n.begin(), n.end(), '/', '_');
        return n;
    });

// ---------------------------------------------------------------------
// JIT lowering of the coverage slot
// ---------------------------------------------------------------------

TEST(CoverageLowering, IntrinsifiedSlotVsGenericPath)
{
    for (bool intrinsify : {true, false}) {
        EngineConfig cfg;
        cfg.mode = ExecMode::Jit;
        cfg.intrinsifyCoverageProbe = intrinsify;
        auto eng = std::make_unique<Engine>(cfg);
        ASSERT_TRUE(eng->loadModule(mustParse(kLoopWat)).ok());
        CoverageIndex cov;
        CoverageOptions opts;
        opts.branchEdges = false;  // pure coverage slots only
        cov.attach(*eng, opts);
        ASSERT_TRUE(eng->instantiate().ok());
        Value r = test::run1(*eng, "run", {Value::makeI32(6)});
        EXPECT_EQ(15u, static_cast<uint32_t>(r.bits));

        double coverageLowered =
            eng->metrics().value("jit.lowering.coverage");
        if (intrinsify) {
            EXPECT_GT(coverageLowered, 0) << "expected coverage slots";
        } else {
            EXPECT_EQ(0, coverageLowered)
                << "coverage slots despite intrinsification off";
        }
        EXPECT_GT(cov.sitesCovered(), 0u);
    }
}

namespace {

/** Mutates instrumentation from probe context: inserts a CountProbe
    the first time it hears any coverage — an epoch bump while the
    coverage slot is mid-fire, forcing the JIT's deopt path. */
class MutatingListener : public CoverageProbe::Listener
{
  public:
    explicit MutatingListener(Engine* eng) : _eng(eng) {}

    void
    onCovered(CoverageProbe& p) override
    {
        covered++;
        if (!_inserted) {
            _inserted = true;
            extra = std::make_shared<CountProbe>();
            _eng->probes().insertLocal(p.funcIndex, p.pc, extra);
        }
    }

    Engine* _eng;
    bool _inserted = false;
    int covered = 0;
    std::shared_ptr<CountProbe> extra;
};

} // namespace

TEST(CoverageLowering, ListenerMutationMidFireDeoptsCleanly)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    auto eng = std::make_unique<Engine>(cfg);
    auto module = mustParse(kLoopWat);
    ASSERT_TRUE(eng->loadModule(std::move(module)).ok());

    MutatingListener listener(eng.get());
    // Hand-plant coverage probes at every boundary of func 0 so the
    // first fire happens inside JIT code.
    const SideTable& st = eng->funcState(0).sideTable;
    std::vector<std::shared_ptr<CoverageProbe>> owned;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t pc : st.instrBoundaries) {
        owned.push_back(
            std::make_shared<CoverageProbe>(0, pc, &listener));
        batch.push_back({0, pc, owned.back()});
    }
    eng->probes().insertBatch(batch);
    ASSERT_TRUE(eng->instantiate().ok());

    Value r = test::run1(*eng, "run", {Value::makeI32(8)});
    EXPECT_EQ(28u, static_cast<uint32_t>(r.bits));
    EXPECT_TRUE(listener._inserted);

    // Every *executed* slot fired exactly once despite the mid-fire
    // epoch bump. (`end` opcodes are branch targets' fall-throughs
    // that never execute here, so not every boundary is reachable.)
    int hit = 0;
    for (const auto& p : owned) hit += p->hit() ? 1 : 0;
    EXPECT_EQ(hit, listener.covered);
    EXPECT_GT(listener.covered, 0);

    // A second run re-executes the mutated site: the probe inserted
    // from probe context fires, and no coverage bit double-reports.
    int coveredAfterFirst = listener.covered;
    r = test::run1(*eng, "run", {Value::makeI32(8)});
    EXPECT_EQ(28u, static_cast<uint32_t>(r.bits));
    EXPECT_EQ(coveredAfterFirst, listener.covered);
    EXPECT_GT(listener.extra->count, 0u)
        << "the probe inserted mid-fire must fire on re-execution";
}

// ---------------------------------------------------------------------
// Parity: CoverageIndex edges vs the trace sidecar's branch analysis
// ---------------------------------------------------------------------

TEST(CoverageParity, EdgeSetMatchesTraceSidecarBranches)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;

    // Reference: the recorded-trace sidecar over the same run.
    std::vector<uint8_t> bytes = recordTrace(
        mustParse(kLoopWat), cfg, "run", {Value::makeI32(5)});
    TraceAnalysis analysis = analyzeTrace(mustRead(bytes));
    ASSERT_FALSE(analysis.branches.empty());

    auto eng = std::make_unique<Engine>(cfg);
    ASSERT_TRUE(eng->loadModule(mustParse(kLoopWat)).ok());
    CoverageIndex cov;
    cov.attach(*eng);
    ASSERT_TRUE(eng->instantiate().ok());
    test::run1(*eng, "run", {Value::makeI32(5)});

    std::map<uint64_t, uint8_t> edges = cov.branchEdges();
    EXPECT_EQ(analysis.branches.size(), edges.size());
    for (const auto& [key, counts] : analysis.branches) {
        auto it = edges.find(key);
        ASSERT_NE(edges.end(), it) << "sidecar site missing: " << key;
        EXPECT_EQ(counts.taken > 0, (it->second & 1) != 0) << key;
        EXPECT_EQ(counts.notTaken > 0, (it->second & 2) != 0) << key;
    }
}

// ---------------------------------------------------------------------
// Shake: deterministic perturbation, replay-verified
// ---------------------------------------------------------------------

TEST(Shake, SameSeedIsByteIdenticalAcrossTiersAndSeedsDiffer)
{
    ShakeOptions sh;
    sh.seed = 9;
    sh.shortReads = true;
    sh.randomHost = true;
    std::vector<Value> args{Value::makeI32(40)};

    std::vector<uint8_t> golden;
    for (EngineConfig cfg : test::allModes()) {
        Module m = mustParse(kReadWat);
        std::vector<uint8_t> t =
            recordTrace(m, cfg, "run", args, {}, makeShakeEnv(m, sh));
        ASSERT_FALSE(t.empty()) << modeName(cfg.mode);
        if (golden.empty()) {
            golden = t;
        } else {
            EXPECT_EQ(golden, t)
                << modeName(cfg.mode) << " diverged from interpreter";
        }
    }

    // Short reads stay within [0, asked]: two reads of 40 sum ≤ 80.
    Trace t = mustRead(golden);
    ASSERT_EQ(1u, t.results().size());
    EXPECT_LE(static_cast<uint32_t>(t.results()[0].bits), 80u);

    // A different seed perturbs differently (different host stream).
    ShakeOptions other = sh;
    other.seed = 10;
    Module m = mustParse(kReadWat);
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;
    std::vector<uint8_t> t2 =
        recordTrace(m, interp, "run", args, {}, makeShakeEnv(m, other));
    EXPECT_NE(golden, t2);
}

TEST(Shake, GrowFaultInjectsTierIndependently)
{
    ShakeOptions sh;
    sh.seed = 1;  // first grow fails under this seed (see fixtures)
    sh.failMemGrow = true;
    std::vector<Value> args{Value::makeI32(1)};
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;

    Module m = mustParse(kGrowWat);
    std::vector<uint8_t> shaken =
        recordTrace(m, interp, "run", args, {}, makeShakeEnv(m, sh));
    ASSERT_EQ(TrapReason::Unreachable, mustRead(shaken).trapReason())
        << "seed 1 must fail the first grow";

    // The same environment reproduces the trap byte-for-byte on the
    // compiled tiers: the injection point is under all of them.
    for (EngineConfig cfg :
         {test::allModes()[1], test::allModes()[2]}) {
        Module fresh = mustParse(kGrowWat);
        ReplayEnv env = makeShakeEnv(fresh, sh);
        ReplayOutcome o = replayVerify(shaken, std::move(fresh), cfg, env);
        EXPECT_TRUE(o.ok) << modeName(cfg.mode) << ": " << o.message;
    }

    // Without the plan the grow succeeds and nothing traps.
    std::vector<uint8_t> clean =
        recordTrace(mustParse(kGrowWat), interp, "run", args);
    EXPECT_EQ(TrapReason::None, mustRead(clean).trapReason());
    EXPECT_NE(shaken, clean);
}

TEST(Shake, MemorySeedIsWrittenAtOffsetZero)
{
    const char* wat = R"((module (memory 1)
      (func (export "run") (result i32) (i32.load (i32.const 0)))))";
    ShakeOptions sh;
    sh.memSeed = {0x78, 0x56, 0x34, 0x12};
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;
    Module m = mustParse(wat);
    Trace t = mustRead(
        recordTrace(m, interp, "run", {}, {}, makeShakeEnv(m, sh)));
    ASSERT_EQ(1u, t.results().size());
    EXPECT_EQ(0x12345678u, static_cast<uint32_t>(t.results()[0].bits));
}

// ---------------------------------------------------------------------
// Delta-minimization
// ---------------------------------------------------------------------

TEST(Minimize, DdminShrinksToTheSingleRelevantByte)
{
    FailureSignature target;
    target.kind = FailureSignature::Kind::Trap;
    target.trap = TrapReason::Unreachable;
    FailureRunner run = [&](const std::vector<uint8_t>& in) {
        FailureSignature sig;
        if (std::count(in.begin(), in.end(), 0x42) > 0) sig = target;
        return sig;
    };
    std::vector<uint8_t> input(64, 0x11);
    input[37] = 0x42;
    MinimizeResult m = minimizeInput(input, run, target);
    EXPECT_EQ(std::vector<uint8_t>{0x42}, m.input);
    EXPECT_GT(m.execs, 0u);
}

TEST(Minimize, NonReproducingInputIsReturnedUnchanged)
{
    FailureSignature target;
    target.kind = FailureSignature::Kind::Divergence;
    FailureRunner run = [](const std::vector<uint8_t>&) {
        return FailureSignature{};  // never fails
    };
    std::vector<uint8_t> input{1, 2, 3};
    MinimizeResult m = minimizeInput(input, run, target);
    EXPECT_EQ(input, m.input);
}

TEST(Minimize, RespectsTheExecBudget)
{
    FailureSignature target;
    target.kind = FailureSignature::Kind::Divergence;
    size_t calls = 0;
    FailureRunner run = [&](const std::vector<uint8_t>&) {
        calls++;
        return target;  // always fails: worst case for the budget
    };
    MinimizeOptions opts;
    opts.maxExecs = 10;
    std::vector<uint8_t> input(256, 0xee);
    MinimizeResult m = minimizeInput(input, run, target, opts);
    EXPECT_LE(m.execs, opts.maxExecs + 1);
    EXPECT_LE(calls, opts.maxExecs + 1);
    EXPECT_LT(m.input.size(), input.size()) << "budget spent shrinking";
}

/** The acceptance criterion: a planted cross-environment divergence
    minimizes to ≤10% of the original trace length. */
TEST(Minimize, PlantedDivergenceShrinksBelowTenPercentOfTrace)
{
    Module module = mustParse(kStepWat);
    EngineConfig interp;
    interp.mode = ExecMode::Interpreter;

    // Two hand-built environments that agree on step(i) for i < 5 and
    // disagree from i == 5 on: any run reaching the sixth call
    // diverges, shorter runs do not.
    auto envReturning = [](int divergeFrom) {
        ReplayEnv env;
        env.preInstantiate = [divergeFrom](Engine& eng) {
            FuncType ty;
            ty.params = {ValType::I32};
            ty.results = {ValType::I32};
            eng.imports().addFunc(
                "env", "step",
                HostFunc{ty, [divergeFrom](
                                 const std::vector<Value>& args,
                                 std::vector<Value>* results) {
                             int32_t i = static_cast<int32_t>(
                                 args[0].bits);
                             int32_t v =
                                 i >= divergeFrom ? i + 100 : i;
                             results->push_back(Value::makeI32(v));
                             return TrapReason::None;
                         }});
        };
        return env;
    };

    auto traceWith = [&](int divergeFrom, uint32_t n) {
        ReplayEnv env = envReturning(divergeFrom);
        return recordTrace(module, interp, "run",
                           {Value::makeI32(static_cast<int32_t>(n))},
                           {}, env);
    };
    auto eventsOf = [&](const std::vector<uint8_t>& t) {
        return mustRead(t).events.size();
    };

    FailureSignature target;
    target.kind = FailureSignature::Kind::Divergence;
    FailureRunner run = [&](const std::vector<uint8_t>& in) {
        uint32_t n = in.empty() ? 0 : in[0];
        FailureSignature sig;
        if (traceWith(5, n) != traceWith(1000, n)) sig = target;
        return sig;
    };

    std::vector<uint8_t> original{200, 0, 0, 0};
    ASSERT_TRUE(run(original).failing());
    size_t originalEvents = eventsOf(traceWith(5, 200));

    MinimizeResult m = minimizeInput(original, run, target);
    ASSERT_TRUE(run(m.input).failing());
    ASSERT_EQ(1u, m.input.size());
    EXPECT_EQ(6u, m.input[0]) << "smallest n reaching the sixth call";

    size_t minimizedEvents = eventsOf(traceWith(5, m.input[0]));
    EXPECT_LE(minimizedEvents * 10, originalEvents)
        << minimizedEvents << " events vs " << originalEvents
        << " — reproducer trace prefix not minimal enough";
}

// ---------------------------------------------------------------------
// The coverage-guided fuzzer
// ---------------------------------------------------------------------

TEST(Fuzzer, FindsAndMinimizesAPlantedTrap)
{
    const char* wat = R"((module
      (func (export "run") (param i32) (result i32)
        (i32.div_s (i32.const 1000) (local.get 0)))))";
    FuzzOptions opts;
    opts.entry = "run";
    opts.seed = 5;
    opts.runs = 40;
    opts.watSource = wat;
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;

    FuzzResult r = runFuzzer(mustParse(wat), cfg, opts);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(1u, r.findings.size());
    const FuzzFinding& f = r.findings[0];
    EXPECT_EQ(FailureSignature::Kind::Trap, f.signature.kind);
    EXPECT_EQ(TrapReason::DivByZero, f.signature.trap);
    EXPECT_TRUE(f.input.empty()) << "zero divisor minimizes to no input";
    EXPECT_GT(f.minTraceEvents, 0u);

    // The packaged reproducer verifies across all three tiers.
    ASSERT_TRUE(f.haveRepro);
    ReproVerdict v = verifyReproducer(f.repro);
    EXPECT_TRUE(v.ok) << v.message;
}

TEST(Fuzzer, CampaignIsDeterministicInItsSeed)
{
    Module module = mustParse(kLoopWat);
    FuzzOptions opts;
    opts.entry = "run";
    opts.seed = 7;
    opts.runs = 48;
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;

    FuzzResult a = runFuzzer(module, cfg, opts);
    FuzzResult b = runFuzzer(module, cfg, opts);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.execs, b.execs);
    EXPECT_EQ(a.corpusSize, b.corpusSize);
    EXPECT_EQ(a.sitesCovered, b.sitesCovered);
    EXPECT_EQ(a.edgesCovered, b.edgesCovered);
    EXPECT_EQ(a.findings.size(), b.findings.size());

    FuzzOptions other = opts;
    other.seed = 8;
    FuzzResult c = runFuzzer(module, cfg, other);
    ASSERT_TRUE(c.ok);
    EXPECT_EQ(c.seed, 8u) << "the campaign seed is recorded";
}

TEST(Fuzzer, CoverageGuidanceGrowsTheCorpus)
{
    FuzzOptions opts;
    opts.entry = "run";
    opts.seed = 3;
    opts.runs = 64;
    EngineConfig cfg;
    cfg.mode = ExecMode::Jit;
    FuzzResult r = runFuzzer(mustParse(kLoopWat), cfg, opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.corpusSize, 2u) << "new coverage should admit inputs";
    EXPECT_GT(r.sitesCovered, 0u);
    EXPECT_EQ(r.edgesCovered, r.edgesTotal) << "loop covers both ways";
}

TEST(Fuzzer, UnknownEntryIsAnErrorNotACrash)
{
    FuzzOptions opts;
    opts.entry = "nope";
    FuzzResult r = runFuzzer(mustParse(kLoopWat), EngineConfig{}, opts);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(std::string::npos, r.error.find("nope"));
}

// ---------------------------------------------------------------------
// Reproducers
// ---------------------------------------------------------------------

TEST(Repro, ValueTextIsRawBitExactForFloats)
{
    // A NaN payload survives because floats render as raw-bit hex.
    Value nan{};
    nan.type = ValType::F32;
    nan.bits = 0x7fc00123u;
    Value out{};
    ASSERT_TRUE(valueFromText(valueToText(nan), &out));
    EXPECT_EQ(nan.bits, out.bits);
    EXPECT_EQ(ValType::F32, out.type);

    for (Value v : {Value::makeI32(-5),
                    Value::makeI64(static_cast<int64_t>(1) << 40),
                    Value::makeF64(3.25)}) {
        Value round{};
        ASSERT_TRUE(valueFromText(valueToText(v), &round))
            << valueToText(v);
        EXPECT_EQ(v.type, round.type);
        EXPECT_EQ(v.bits, round.bits);
    }
    EXPECT_FALSE(valueFromText("q32:1", &out));
}

TEST(Repro, RenderParseRoundTrip)
{
    Reproducer r;
    r.entry = "run";
    r.seed = 77;
    r.shakeModes = "grow,short";
    r.expect.kind = FailureSignature::Kind::Trap;
    r.expect.trap = TrapReason::Unreachable;
    r.args = {Value::makeI32(-3), Value::makeF64(1.5)};
    r.memSeed = {0xde, 0xad};
    r.trace = {0x57, 0x5a, 0x54, 0x52};
    r.watModule = "(module)";

    auto parsed = parseReproducer(renderReproducer(r));
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();
    const Reproducer& p = parsed.value();
    EXPECT_EQ(r.entry, p.entry);
    EXPECT_EQ(r.seed, p.seed);
    EXPECT_EQ(r.shakeModes, p.shakeModes);
    EXPECT_TRUE(r.expect.matches(p.expect));
    ASSERT_EQ(2u, p.args.size());
    EXPECT_EQ(r.args[0].bits, p.args[0].bits);
    EXPECT_EQ(r.args[1].bits, p.args[1].bits);
    EXPECT_EQ(r.memSeed, p.memSeed);
    EXPECT_EQ(r.trace, p.trace);
    EXPECT_EQ(r.watModule, p.watModule);

    EXPECT_FALSE(parseReproducer("not a reproducer").ok());
}

TEST(Repro, TamperedGoldenTraceFailsVerification)
{
    const char* wat = R"((module
      (func (export "run") (param i32) (result i32)
        (i32.div_s (i32.const 10) (local.get 0)))))";
    FuzzOptions opts;
    opts.entry = "run";
    opts.seed = 2;
    opts.runs = 16;
    opts.watSource = wat;
    FuzzResult r = runFuzzer(mustParse(wat), EngineConfig{}, opts);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(1u, r.findings.size());
    ASSERT_TRUE(r.findings[0].haveRepro);

    Reproducer tampered = r.findings[0].repro;
    ASSERT_FALSE(tampered.trace.empty());
    tampered.trace.back() ^= 0xff;
    EXPECT_FALSE(verifyReproducer(tampered).ok);
}

TEST(Repro, ShakeModesRoundTripThroughTheFormat)
{
    ShakeOptions sh;
    ASSERT_TRUE(parseShakeModes("grow,short,random", &sh));
    EXPECT_TRUE(sh.failMemGrow && sh.shortReads && sh.randomHost);
    EXPECT_EQ("grow,short,random", shakeModesToString(sh));
    ShakeOptions none;
    EXPECT_EQ("", shakeModesToString(none));
    EXPECT_FALSE(parseShakeModes("grow,bogus", &sh));
}
