/**
 * @file
 * Trace subsystem tests: format round-trips, recorder determinism,
 * cross-tier replay verification (the record-under-interpreter /
 * verify-under-JIT divergence oracle) over the whole benchmark corpus,
 * trap and memory.grow capture, probe points, reader strictness, and
 * the execution-free sidecar analyses.
 */

#include <gtest/gtest.h>

#include <vector>

#include "suites/suites.h"
#include "test_util.h"
#include "trace/reader.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "trace/sidecar.h"

using namespace wizpp;
using wizpp::test::mustParse;

namespace {

EngineConfig
modeConfig(ExecMode mode)
{
    EngineConfig cfg;
    cfg.mode = mode;
    if (mode == ExecMode::Tiered) cfg.tierUpThreshold = 2;
    return cfg;
}

std::vector<uint8_t>
record(const std::string& wat, ExecMode mode, const std::string& entry,
       const std::vector<Value>& args)
{
    return recordTrace(mustParse(wat), modeConfig(mode), entry, args);
}

Trace
mustRead(const std::vector<uint8_t>& bytes)
{
    auto r = readTrace(bytes);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().toString());
    return r.ok() ? r.take() : Trace{};
}

} // namespace

// ---------------------------------------------------------------------
// Corpus-wide determinism certificate and cross-tier oracle
// (the PR's acceptance criterion).
// ---------------------------------------------------------------------

class TraceCorpus : public ::testing::TestWithParam<const BenchProgram*>
{};

TEST_P(TraceCorpus, RecordReplayByteIdenticalAcrossTiers)
{
    const BenchProgram& p = *GetParam();
    std::vector<Value> args{Value::makeI32(1)};

    // Record twice under the interpreter: byte-identical.
    std::vector<uint8_t> a =
        record(p.wat, ExecMode::Interpreter, p.entry, args);
    std::vector<uint8_t> b =
        record(p.wat, ExecMode::Interpreter, p.entry, args);
    ASSERT_FALSE(a.empty()) << p.name;
    EXPECT_EQ(a, b) << p.name << ": interpreter re-record diverged";

    // Cross-tier: verify the interpreter-recorded trace under the JIT
    // and the tiered engine.
    ReplayOutcome jit = replayVerify(
        a, mustParse(p.wat), modeConfig(ExecMode::Jit));
    EXPECT_TRUE(jit.ok) << p.name << ": " << jit.message;
    ReplayOutcome tiered = replayVerify(
        a, mustParse(p.wat), modeConfig(ExecMode::Tiered));
    EXPECT_TRUE(tiered.ok) << p.name << ": " << tiered.message;
}

TEST_P(TraceCorpus, RecordedResultMatchesDirectRun)
{
    const BenchProgram& p = *GetParam();
    std::vector<Value> args{Value::makeI32(1)};
    Trace t = mustRead(record(p.wat, ExecMode::Jit, p.entry, args));
    EXPECT_EQ(t.trapReason(), TrapReason::None) << p.name;

    auto eng = test::makeEngine(p.wat, modeConfig(ExecMode::Jit));
    Value direct = test::run1(*eng, p.entry, args);
    ASSERT_EQ(t.results().size(), 1u) << p.name;
    EXPECT_EQ(t.results()[0], direct) << p.name;
}

namespace {

std::vector<const BenchProgram*>
allProgramPointers()
{
    std::vector<const BenchProgram*> out;
    for (const auto& p : allPrograms()) out.push_back(&p);
    out.push_back(&richardsProgram());
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Corpus, TraceCorpus, ::testing::ValuesIn(allProgramPointers()),
    [](const ::testing::TestParamInfo<const BenchProgram*>& info) {
        std::string n = info.param->suite + "_" + info.param->name;
        for (char& c : n) {
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return n;
    });

// ---------------------------------------------------------------------
// Format and reader
// ---------------------------------------------------------------------

TEST(TraceFormat, WriterReaderRoundTrip)
{
    TraceWriter w;
    w.setHeader(0xabcdef1234ull, "run",
                {Value::makeI32(7), Value::makeF64(1.5)});
    w.funcEntry(3);
    w.branch(3, 17, true);
    w.branch(3, 21, false);
    w.brTable(3, 40, 2);
    w.memGrow(4, 1);
    w.probeFire(3, 99);
    w.funcExit(3);
    w.result({Value::makeI64(int64_t{-5})});
    w.end();

    Trace t = mustRead(w.bytes());
    EXPECT_EQ(t.version, kTraceVersion);
    EXPECT_EQ(t.fingerprint, 0xabcdef1234ull);
    EXPECT_EQ(t.entry, "run");
    ASSERT_EQ(t.args.size(), 2u);
    EXPECT_EQ(t.args[0], Value::makeI32(7));
    EXPECT_EQ(t.args[1], Value::makeF64(1.5));

    ASSERT_EQ(t.events.size(), 8u);
    EXPECT_EQ(t.events[0].kind, TraceKind::FuncEntry);
    EXPECT_EQ(t.events[0].func, 3u);
    EXPECT_EQ(t.events[1].kind, TraceKind::Branch);
    EXPECT_EQ(t.events[1].pc, 17u);
    EXPECT_EQ(t.events[1].a, 1u);
    EXPECT_EQ(t.events[2].a, 0u);
    EXPECT_EQ(t.events[3].kind, TraceKind::BrTable);
    EXPECT_EQ(t.events[3].a, 2u);
    EXPECT_EQ(t.events[4].kind, TraceKind::MemGrow);
    EXPECT_EQ(t.events[4].a, 4u);
    EXPECT_EQ(t.events[4].b, 1u);
    EXPECT_EQ(t.events[5].kind, TraceKind::ProbeFire);
    EXPECT_EQ(t.events[6].kind, TraceKind::FuncExit);
    EXPECT_EQ(t.events[7].kind, TraceKind::Result);
    ASSERT_EQ(t.events[7].values.size(), 1u);
    EXPECT_EQ(t.events[7].values[0], Value::makeI64(int64_t{-5}));
    EXPECT_EQ(t.results()[0], Value::makeI64(int64_t{-5}));
    EXPECT_EQ(t.trapReason(), TrapReason::None);
}

TEST(TraceFormat, ReaderRejectsCorruption)
{
    TraceWriter w;
    w.setHeader(1, "run", {});
    w.funcEntry(0);
    w.funcExit(0);
    w.result({});
    w.end();
    std::vector<uint8_t> good = w.bytes();
    ASSERT_TRUE(readTrace(good).ok());

    std::vector<uint8_t> badMagic = good;
    badMagic[0] = 'X';
    EXPECT_FALSE(readTrace(badMagic).ok());

    std::vector<uint8_t> badVersion = good;
    badVersion[4] = 0x7e;  // version 126
    EXPECT_FALSE(readTrace(badVersion).ok());

    std::vector<uint8_t> truncated(good.begin(), good.end() - 5);
    EXPECT_FALSE(readTrace(truncated).ok());

    // Flipping an event payload bit breaks the checksum.
    std::vector<uint8_t> flipped = good;
    flipped[good.size() - 12] ^= 0x01;
    EXPECT_FALSE(readTrace(flipped).ok());

    std::vector<uint8_t> trailing = good;
    trailing.push_back(0x00);
    EXPECT_FALSE(readTrace(trailing).ok());

    EXPECT_FALSE(readTrace({}).ok());
}

TEST(TraceFormat, ReaderRejectsHostileValueCountWithoutAllocating)
{
    // A header whose argc claims 2^32-1 values must be a graceful
    // parse error, not a multi-gigabyte reserve.
    std::vector<uint8_t> bytes(kTraceMagic, kTraceMagic + 4);
    encodeULEB(bytes, kTraceVersion);
    for (int i = 0; i < 8; i++) bytes.push_back(0);  // fingerprint
    encodeULEB(bytes, 3u);  // entry length
    bytes.insert(bytes.end(), {'r', 'u', 'n'});
    encodeULEB(bytes, 0xffffffffu);  // hostile argc
    auto r = readTrace(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("args"), std::string::npos);
}

TEST(TraceFormat, FingerprintIgnoresNamesButNotCode)
{
    Module a = mustParse("(module (func (export \"run\") (result i32) "
                         "(i32.const 1)))");
    Module b = mustParse("(module (func (export \"other\") (result i32) "
                         "(i32.const 1)))");
    Module c = mustParse("(module (func (export \"run\") (result i32) "
                         "(i32.const 2)))");
    EXPECT_EQ(moduleFingerprint(a), moduleFingerprint(b));
    EXPECT_NE(moduleFingerprint(a), moduleFingerprint(c));
}

// ---------------------------------------------------------------------
// Event capture specifics
// ---------------------------------------------------------------------

TEST(TraceRecord, TrapEndsTheTrace)
{
    const char* wat = "(module (func (export \"run\") (unreachable)))";
    std::vector<uint8_t> bytes =
        record(wat, ExecMode::Interpreter, "run", {});
    Trace t = mustRead(bytes);
    EXPECT_EQ(t.trapReason(), TrapReason::Unreachable);
    ASSERT_FALSE(t.events.empty());
    EXPECT_EQ(t.events.back().kind, TraceKind::Trap);
    EXPECT_TRUE(t.results().empty());

    // A trapping trace replays byte-identically too, across tiers.
    ReplayOutcome o =
        replayVerify(bytes, mustParse(wat), modeConfig(ExecMode::Jit));
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(TraceRecord, MemoryGrowCaptured)
{
    const char* wat = R"((module (memory 1)
      (func (export "run") (result i32)
        (drop (memory.grow (i32.const 2)))
        (drop (memory.grow (i32.const 3)))
        (memory.size))))";
    Trace t = mustRead(record(wat, ExecMode::Interpreter, "run", {}));
    std::vector<const TraceEvent*> grows;
    for (const TraceEvent& e : t.events) {
        if (e.kind == TraceKind::MemGrow) grows.push_back(&e);
    }
    ASSERT_EQ(grows.size(), 2u);
    EXPECT_EQ(grows[0]->a, 2u);  // delta
    EXPECT_EQ(grows[0]->b, 1u);  // pages before
    EXPECT_EQ(grows[1]->a, 3u);
    EXPECT_EQ(grows[1]->b, 3u);
    EXPECT_EQ(t.results()[0], Value::makeI32(6));
}

TEST(TraceRecord, BranchDirectionsAndBrTableArms)
{
    // run(n): a br_table over n plus an if on n > 1.
    const char* wat = R"((module
      (func (export "run") (param $n i32) (result i32)
        (local $r i32)
        (block $b2 (block $b1 (block $b0
          (br_table $b0 $b1 $b2 (local.get $n)))
          (local.set $r (i32.const 10)) (br $b2))
          (local.set $r (i32.const 20)))
        (if (i32.gt_u (local.get $n) (i32.const 1))
          (then (local.set $r (i32.const 30))))
        (local.get $r))))";
    Trace t0 = mustRead(record(wat, ExecMode::Interpreter, "run",
                               {Value::makeI32(0)}));
    Trace t5 = mustRead(record(wat, ExecMode::Interpreter, "run",
                               {Value::makeI32(5)}));

    auto armOf = [](const Trace& t) -> uint64_t {
        for (const TraceEvent& e : t.events) {
            if (e.kind == TraceKind::BrTable) return e.a;
        }
        return ~0ull;
    };
    auto branchTaken = [](const Trace& t) -> uint64_t {
        for (const TraceEvent& e : t.events) {
            if (e.kind == TraceKind::Branch) return e.a;
        }
        return ~0ull;
    };
    EXPECT_EQ(armOf(t0), 0u);
    EXPECT_EQ(armOf(t5), 2u);  // out-of-range index clamps to default
    EXPECT_EQ(branchTaken(t0), 0u);
    EXPECT_EQ(branchTaken(t5), 1u);
    EXPECT_EQ(t0.results()[0], Value::makeI32(10));
    EXPECT_EQ(t5.results()[0], Value::makeI32(30));
}

TEST(TraceRecord, EntryExitEventsAreWellNested)
{
    const BenchProgram& p = richardsProgram();
    Trace t = mustRead(record(p.wat, ExecMode::Interpreter, p.entry,
                              {Value::makeI32(1)}));
    int64_t depth = 0;
    uint64_t entries = 0;
    std::vector<uint32_t> stack;
    for (const TraceEvent& e : t.events) {
        if (e.kind == TraceKind::FuncEntry) {
            depth++;
            entries++;
            stack.push_back(e.func);
        } else if (e.kind == TraceKind::FuncExit) {
            depth--;
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), e.func);
            stack.pop_back();
        }
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << "unbalanced entry/exit stream";
    EXPECT_GT(entries, 1000u) << "richards should be call-heavy";
}

TEST(TraceRecord, ProbePointsRecordAndReplay)
{
    const char* wat = R"((module
      (func (export "run") (param $n i32) (result i32)
        (local $i i32)
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
        (local.get $i))))";

    Module m = mustParse(wat);
    Engine eng(modeConfig(ExecMode::Interpreter));
    ASSERT_TRUE(eng.loadModule(mustParse(wat)).ok());
    TraceRecorder rec;
    eng.attachMonitor(&rec);
    // Probe the loop header of func 0.
    ASSERT_FALSE(eng.funcState(0).sideTable.loopHeaders.empty());
    uint32_t loopPc = eng.funcState(0).sideTable.loopHeaders[0];
    ASSERT_TRUE(rec.addProbePoint(0, loopPc));
    EXPECT_TRUE(rec.addProbePoint(0, loopPc));  // dedup is idempotent
    EXPECT_FALSE(rec.addProbePoint(99, 0));     // invalid location
    ASSERT_TRUE(eng.instantiate().ok());

    std::vector<Value> args{Value::makeI32(5)};
    rec.setInvocation("run", args);
    auto r = eng.callExport("run", args);
    ASSERT_TRUE(r.ok());
    rec.finish(TrapReason::None, r.value());

    Trace t = mustRead(rec.bytes());
    uint64_t fires = 0;
    for (const TraceEvent& e : t.events) {
        if (e.kind == TraceKind::ProbeFire) {
            EXPECT_EQ(e.func, 0u);
            EXPECT_EQ(e.pc, loopPc);
            fires++;
        }
    }
    EXPECT_EQ(fires, 6u);  // loop header runs n+1 times

    // replayVerify re-installs the probe points it finds in the stream.
    ReplayOutcome o = replayVerify(rec.bytes(), std::move(m),
                                   modeConfig(ExecMode::Jit));
    EXPECT_TRUE(o.ok) << o.message;
}

// ---------------------------------------------------------------------
// Replay verification failure modes
// ---------------------------------------------------------------------

TEST(TraceReplay, InvocationErrorProducesNoTrace)
{
    // Calling a nonexistent export never runs the program, so there is
    // no outcome to seal into a "successful" trace.
    const char* wat = "(module (func (export \"run\") (result i32) "
                      "(i32.const 1)))";
    EXPECT_TRUE(recordTrace(mustParse(wat),
                            modeConfig(ExecMode::Interpreter),
                            "nonexistent", {})
                    .empty());
}

TEST(TraceReplay, FingerprintMismatchRefusesToRun)
{
    std::vector<uint8_t> bytes =
        record(findProgram("gemm")->wat, ExecMode::Interpreter, "run",
               {Value::makeI32(1)});
    ReplayOutcome o =
        replayVerify(bytes, mustParse(findProgram("trisolv")->wat),
                     modeConfig(ExecMode::Jit));
    EXPECT_FALSE(o.ok);
    EXPECT_FALSE(o.ran);
    EXPECT_NE(o.message.find("fingerprint"), std::string::npos);
}

TEST(TraceReplay, DivergenceIsLocalizedToTheFirstEvent)
{
    // Tamper with the recorded direction of the first branch event and
    // re-seal the trace; the verifier must point at that event.
    const char* wat = R"((module
      (func (export "run") (param $n i32) (result i32)
        (if (result i32) (local.get $n)
          (then (i32.const 1)) (else (i32.const 2))))))";
    std::vector<Value> args{Value::makeI32(1)};
    std::vector<uint8_t> bytes =
        record(wat, ExecMode::Interpreter, "run", args);
    Trace t = mustRead(bytes);

    TraceWriter forged;
    forged.setHeader(t.fingerprint, t.entry, t.args);
    bool flipped = false;
    for (const TraceEvent& e : t.events) {
        switch (e.kind) {
          case TraceKind::FuncEntry: forged.funcEntry(e.func); break;
          case TraceKind::FuncExit: forged.funcExit(e.func); break;
          case TraceKind::Branch:
            forged.branch(e.func, e.pc, flipped ? e.a != 0 : e.a == 0);
            flipped = true;
            break;
          case TraceKind::Result: forged.result(e.values); break;
          default: break;
        }
    }
    forged.end();
    ASSERT_TRUE(flipped);

    ReplayOutcome o = replayVerify(forged.bytes(), mustParse(wat),
                                   modeConfig(ExecMode::Interpreter));
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.ran);
    EXPECT_NE(o.message.find("divergence"), std::string::npos);
    EXPECT_NE(o.goldenEvent.find("branch"), std::string::npos)
        << o.message;
}

// ---------------------------------------------------------------------
// Sidecar analyses (execution-free)
// ---------------------------------------------------------------------

TEST(TraceSidecar, CoverageMergesAcrossRuns)
{
    const char* wat = R"((module
      (func $a (result i32) (i32.const 1))
      (func $b (result i32) (i32.const 2))
      (func (export "run") (param $n i32) (result i32)
        (if (result i32) (local.get $n)
          (then (call $a)) (else (call $b))))))";

    Trace t0 = mustRead(record(wat, ExecMode::Interpreter, "run",
                               {Value::makeI32(0)}));
    Trace t1 = mustRead(record(wat, ExecMode::Interpreter, "run",
                               {Value::makeI32(1)}));
    TraceAnalysis a0 = analyzeTrace(t0);
    TraceAnalysis a1 = analyzeTrace(t1);

    // Each run covers the entry function plus one callee, one-sidedly.
    EXPECT_EQ(a0.coveredFuncs().size(), 2u);
    EXPECT_EQ(a1.coveredFuncs().size(), 2u);
    ASSERT_EQ(a0.branches.size(), 1u);
    EXPECT_FALSE(a0.branches.begin()->second.bothWays());

    // The drcov-style merge covers everything, both ways.
    TraceAnalysis merged = a0;
    merged.merge(a1);
    EXPECT_EQ(merged.runs, 2u);
    EXPECT_EQ(merged.coveredFuncs().size(), 3u);
    ASSERT_EQ(merged.branches.size(), 1u);
    EXPECT_TRUE(merged.branches.begin()->second.bothWays());
    EXPECT_EQ(merged.branches.begin()->second.total(), 2u);

    std::ostringstream cov;
    writeCoverageReport(cov, merged);
    EXPECT_NE(cov.str().find("functions entered: 3"), std::string::npos)
        << cov.str();
    EXPECT_NE(cov.str().find("1 exercised both ways"), std::string::npos)
        << cov.str();
}

TEST(TraceSidecar, ProfileHistogramCountsEntries)
{
    const BenchProgram& p = richardsProgram();
    Trace t = mustRead(record(p.wat, ExecMode::Jit, p.entry,
                              {Value::makeI32(1)}));
    TraceAnalysis a = analyzeTrace(t);

    uint64_t entryEvents = 0;
    for (const TraceEvent& e : t.events) {
        if (e.kind == TraceKind::FuncEntry) entryEvents++;
    }
    uint64_t histogramTotal = 0;
    for (const auto& [f, n] : a.funcEntries) histogramTotal += n;
    EXPECT_EQ(histogramTotal, entryEvents);
    EXPECT_GT(histogramTotal, 0u);

    std::ostringstream prof;
    writeProfileReport(prof, a, 5);
    EXPECT_NE(prof.str().find("hottest functions"), std::string::npos);
}
