/**
 * @file
 * Superinstruction fusion tests (src/interp/fusion.h;
 * docs/INTERPRETER.md, "Superinstructions & TOS caching").
 *
 * The fusion pass is a *side annotation*: FuncState::dcode carries the
 * fused dispatch bytes while FuncState::code stays byte-identical to an
 * unfused engine. These tests pin the matcher (window placement, greedy
 * longest-match, the single-byte-LEB immediate restriction), fused
 * execution (results and traps equal to singles, WZTR streams
 * byte-identical across backends and tiers), the probe protocol (a
 * probed pc splits its window to singles; the last detach re-fuses it),
 * and the determinism of the pair-profile monitor that feeds the
 * fusion table's mining pipeline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/frame.h"
#include "interp/fusion.h"
#include "interp/interpreter.h"
#include "probes/probe.h"
#include "probes/probemanager.h"
#include "suites/suites.h"
#include "test_util.h"
#include "trace/pairprofile.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "wasm/opcodes.h"

using namespace wizpp;
using wizpp::test::mustParse;

namespace {

std::vector<DispatchBackend>
allBackends()
{
    return {DispatchBackend::Table, DispatchBackend::Switch,
            DispatchBackend::Threaded};
}

EngineConfig
interpConfig(bool fuse, DispatchBackend b = DispatchBackend::Table)
{
    EngineConfig cfg;
    cfg.mode = ExecMode::Interpreter;
    cfg.dispatch = b;
    cfg.fuseSuperinstructions = fuse;
    return cfg;
}

/** run(n) = n*3: the loop body fuses into a SOP_GET_INC_SET quad. */
const char* kIncLoopWat = R"WAT((module
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $a i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (i32.add (local.get $a) (i32.const 3)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $a))))WAT";

/** Same dataflow with a two-byte-LEB constant: the const-bearing quad
    cannot fuse, so the matcher falls back to windows that avoid the
    wide immediate. */
const char* kBigConstWat = R"WAT((module
  (func (export "run") (param $n i32) (result i32)
    (local $a i32)
    (local.set $a (i32.add (local.get $n) (i32.const 300)))
    (local.get $a))))WAT";

/** Array-sum over f64s with the canonical base+index*8 addressing the
    6-member SOP_IDX_F64_LOAD window covers. run(n) sums n doubles
    starting at address 0 (memory is zero-initialized: sum is 0.0). */
const char* kIdxLoopWat = R"WAT((module
  (memory 1)
  (func (export "run") (param $n i32) (result f64)
    (local $i i32) (local $b i32) (local $s f64)
    (block $done
      (loop $l
        (br_if $done (i32.ge_s (local.get $i) (local.get $n)))
        (local.set $s
          (f64.add
            (f64.load (i32.add (i32.mul (local.get $i) (i32.const 8))
                               (local.get $b)))
            (local.get $s)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $s))))WAT";

/** Windows of function @p f under @p cfg via a scratch engine. */
const FusedWindow*
findWindow(const FuncState& fs, uint8_t sop)
{
    for (const FusedWindow& w : fs.fusedWindows) {
        if (w.sop == sop) return &w;
    }
    return nullptr;
}

bool
anyWindowCovers(const FuncState& fs, uint32_t pc)
{
    for (const FusedWindow& w : fs.fusedWindows) {
        if (pc >= w.headPc && pc < w.endPc) return true;
    }
    return false;
}

/** Every instruction-boundary pc of function 0, as probe points. */
std::vector<std::pair<uint32_t, uint32_t>>
everyPcOfFunc0(const Module& m)
{
    Engine eng(interpConfig(true));
    Module copy = m;
    EXPECT_TRUE(eng.loadModule(std::move(copy)).ok());
    std::vector<std::pair<uint32_t, uint32_t>> points;
    for (uint32_t pc : eng.funcState(0).sideTable.instrBoundaries) {
        points.push_back({0, pc});
    }
    return points;
}

} // namespace

// ---------------------------------------------------------------------
// Matcher: window placement, dcode/code split, greedy longest-match
// ---------------------------------------------------------------------

TEST(FusionMatcher, AnnotatesWindowsInDcodeOnly)
{
    auto eng = wizpp::test::makeEngine(kIncLoopWat, interpConfig(true));
    FuncState& fs = eng->funcState(0);
    ASSERT_FALSE(fs.fusedWindows.empty());
    EXPECT_EQ(eng->stats.fusedWindows.value(), fs.fusedWindows.size());

    const FusedWindow* quad = findWindow(fs, SOP_GET_INC_SET);
    ASSERT_NE(quad, nullptr) << "local.get;i32.const;i32.add;local.set "
                                "did not fuse";
    // 4 members: local.get(2) + i32.const(2) + i32.add(1) + local.set(2).
    EXPECT_EQ(quad->endPc - quad->headPc, 7u);
    EXPECT_EQ(quad->headByte, OP_LOCAL_GET);

    ASSERT_EQ(fs.dcode.size(), fs.code.size());
    uint32_t prevEnd = 0;
    for (const FusedWindow& w : fs.fusedWindows) {
        // Sorted, non-overlapping, annotated at the head byte only.
        EXPECT_GE(w.headPc, prevEnd);
        prevEnd = w.endPc;
        EXPECT_TRUE(isSuperOpcode(w.sop)) << superOpcodeName(w.sop);
        EXPECT_EQ(fs.dcode[w.headPc], w.sop);
        EXPECT_EQ(fs.code[w.headPc], w.headByte);
        EXPECT_FALSE(isSuperOpcode(fs.code[w.headPc]));
        for (uint32_t pc = w.headPc + 1; pc < w.endPc; pc++) {
            EXPECT_EQ(fs.dcode[pc], fs.code[pc]);
        }
    }
    // Everything outside a window head dispatches on the single byte.
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        bool isHead = false;
        for (const FusedWindow& w : fs.fusedWindows) {
            if (w.headPc == pc) isHead = true;
        }
        if (!isHead) {
            EXPECT_EQ(fs.dcode[pc], fs.code[pc]) << "pc " << pc;
        }
    }
}

TEST(FusionMatcher, DisabledEngineDispatchesOnSinglesCopy)
{
    auto eng = wizpp::test::makeEngine(kIncLoopWat, interpConfig(false));
    FuncState& fs = eng->funcState(0);
    EXPECT_TRUE(fs.fusedWindows.empty());
    EXPECT_EQ(eng->stats.fusedWindows.value(), 0u);
    ASSERT_EQ(fs.dcode.size(), fs.code.size());
    EXPECT_EQ(fs.dcode, fs.code);
    EXPECT_EQ(wizpp::test::run1(*eng, "run", {Value::makeI32(9)}).i32s(),
              27);
}

TEST(FusionMatcher, MultiByteLebImmediateBlocksWindow)
{
    // i32.const 300 is a two-byte LEB: the GET_INC_SET-shaped quad and
    // every other const-bearing pattern at that site must be rejected
    // (fused handlers use fixed immediate offsets). The matcher falls
    // back to the const-free i32.add;local.set;local.get triple.
    auto eng = wizpp::test::makeEngine(kBigConstWat, interpConfig(true));
    FuncState& fs = eng->funcState(0);
    EXPECT_EQ(findWindow(fs, SOP_GET_INC_SET), nullptr);

    uint32_t constPc = UINT32_MAX;
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        if (fs.code[pc] == OP_I32_CONST) constPc = pc;
    }
    ASSERT_NE(constPc, UINT32_MAX);
    EXPECT_FALSE(anyWindowCovers(fs, constPc));

    const FusedWindow* triple = findWindow(fs, SOP_I32_ADD_SET_GET);
    ASSERT_NE(triple, nullptr);
    EXPECT_EQ(triple->headByte, OP_I32_ADD);

    EXPECT_EQ(wizpp::test::run1(*eng, "run", {Value::makeI32(5)}).i32s(),
              305);
}

TEST(FusionMatcher, GreedyPrefersLongestWindow)
{
    // lg;c32;mul;lg;add;f64.load must fuse as one 6-member
    // SOP_IDX_F64_LOAD window, not as the 5-member SOP_IDX, the
    // 4-member SOP_GET_CONST_MUL_ADD, or any pair at the same head.
    auto eng = wizpp::test::makeEngine(kIdxLoopWat, interpConfig(true));
    FuncState& fs = eng->funcState(0);
    const FusedWindow* idx = findWindow(fs, SOP_IDX_F64_LOAD);
    ASSERT_NE(idx, nullptr);
    // 2+2+1+2+1+3 bytes (the f64.load carries align + offset).
    EXPECT_EQ(idx->endPc - idx->headPc, 11u);
    EXPECT_EQ(fs.code[idx->headPc], OP_LOCAL_GET);
    EXPECT_EQ(findWindow(fs, SOP_IDX), nullptr);
    EXPECT_EQ(findWindow(fs, SOP_GET_CONST_MUL_ADD), nullptr);

    // The loop-exit check fuses into a br_if-terminated quad.
    EXPECT_NE(findWindow(fs, SOP_GET_GET_GE_S_BRIF), nullptr);

    EXPECT_EQ(
        wizpp::test::run1(*eng, "run", {Value::makeI32(64)}).f64(), 0.0);
}

// ---------------------------------------------------------------------
// Fused execution: results and traps identical to singles
// ---------------------------------------------------------------------

TEST(FusionExecution, CorpusResultsMatchUnfusedAcrossBackends)
{
    for (const char* name : {"gemm", "richards", "trisolv"}) {
        const BenchProgram* p = findProgram(name);
        ASSERT_NE(p, nullptr) << name;
        std::vector<Value> args{Value::makeI32(1)};
        auto golden =
            wizpp::test::makeEngine(p->wat, interpConfig(false));
        Value want = wizpp::test::run1(*golden, p->entry, args);
        for (DispatchBackend b : allBackends()) {
            auto eng =
                wizpp::test::makeEngine(p->wat, interpConfig(true, b));
            EXPECT_GT(eng->stats.fusedWindows.value(), 0u) << name;
            Value got = wizpp::test::run1(*eng, p->entry, args);
            EXPECT_EQ(want.i64(), got.i64())
                << name << " under " << dispatchBackendName(b);
        }
    }
}

TEST(FusionExecution, MidWindowTrapMatchesUnfused)
{
    // run(10000) reads past the single memory page from inside the
    // SOP_IDX_F64_LOAD window: the fused handler must surface the
    // identical trap (reason and partial sum semantics) as singles.
    for (bool fuse : {false, true}) {
        auto eng =
            wizpp::test::makeEngine(kIdxLoopWat, interpConfig(fuse));
        auto r = eng->callExport("run", {Value::makeI32(10000)});
        EXPECT_FALSE(r.ok()) << "fuse=" << fuse;
        EXPECT_EQ(eng->lastTrap(), TrapReason::MemoryOutOfBounds)
            << "fuse=" << fuse;
    }
}

// ---------------------------------------------------------------------
// WZTR byte-identity: fused dispatch must not move a trace byte
// ---------------------------------------------------------------------

TEST(FusionTraceIdentity, UnprobedAcrossBackendsAndTiers)
{
    for (const char* name : {"richards", "gemm"}) {
        const BenchProgram* p = findProgram(name);
        ASSERT_NE(p, nullptr);
        std::vector<Value> args{Value::makeI32(1)};
        std::vector<uint8_t> golden = recordTrace(
            mustParse(p->wat), interpConfig(false), p->entry, args);
        ASSERT_FALSE(golden.empty());
        for (DispatchBackend b : allBackends()) {
            std::vector<uint8_t> got =
                recordTrace(mustParse(p->wat), interpConfig(true, b),
                            p->entry, args);
            EXPECT_EQ(golden, got)
                << name << " fused trace diverged under "
                << dispatchBackendName(b);
        }
        for (ExecMode mode : {ExecMode::Jit, ExecMode::Tiered}) {
            EngineConfig cfg;
            cfg.mode = mode;
            cfg.tierUpThreshold = 2;
            cfg.fuseSuperinstructions = true;
            std::vector<uint8_t> got =
                recordTrace(mustParse(p->wat), cfg, p->entry, args);
            EXPECT_EQ(golden, got)
                << name << " diverged in mode " << int(mode);
        }
    }
}

TEST(FusionTraceIdentity, ProbeAtEveryPcSplitTraceMatchesUnfused)
{
    // Probe points at *every* pc of the hot function: every fused
    // window splits at attach, and the probed stream must still be
    // byte-identical to the unfused interpreter and the JIT.
    Module m = mustParse(kIdxLoopWat);
    auto points = everyPcOfFunc0(m);
    ASSERT_GT(points.size(), 10u);
    std::vector<Value> args{Value::makeI32(40)};
    std::vector<uint8_t> golden = recordTrace(
        mustParse(kIdxLoopWat), interpConfig(false), "run", args, points);
    ASSERT_FALSE(golden.empty());
    for (DispatchBackend b : allBackends()) {
        std::vector<uint8_t> got =
            recordTrace(mustParse(kIdxLoopWat), interpConfig(true, b),
                        "run", args, points);
        EXPECT_EQ(golden, got)
            << "probed split trace diverged under "
            << dispatchBackendName(b);
    }
    EngineConfig jit;
    jit.mode = ExecMode::Jit;
    std::vector<uint8_t> got = recordTrace(mustParse(kIdxLoopWat), jit,
                                           "run", args, points);
    EXPECT_EQ(golden, got) << "probed split trace diverged under JIT";

    // replayVerify closes the loop: the fused engine re-executes the
    // unfused golden stream.
    ReplayOutcome o = replayVerify(golden, mustParse(kIdxLoopWat),
                                   interpConfig(true));
    EXPECT_TRUE(o.ok) << o.message;
}

// ---------------------------------------------------------------------
// Probe protocol: split at attach, re-fuse after the last detach
// ---------------------------------------------------------------------

TEST(FusionProbeSplit, BatchedProbeAtEveryPcSplitsAndRefuses)
{
    auto eng = wizpp::test::makeEngine(
        kIdxLoopWat, interpConfig(true, DispatchBackend::Threaded));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    const size_t numWindows = fs.fusedWindows.size();
    ASSERT_GT(numWindows, 2u);
    std::vector<uint8_t> fusedDcode = fs.dcode;

    std::vector<Value> args{Value::makeI32(25)};
    Value want = wizpp::test::run1(e, "run", args);

    // One batch probing every pc of the function: one epoch bump,
    // every window transitions fused -> split exactly once.
    uint64_t splits0 = e.stats.fusionSplits.value();
    uint64_t epoch0 = e.instrumentationEpoch;
    const std::vector<uint32_t> pcs = fs.sideTable.instrBoundaries;
    std::vector<std::shared_ptr<CountProbe>> probes;
    std::vector<ProbeManager::SiteProbe> batch;
    for (uint32_t pc : pcs) {
        auto p = std::make_shared<CountProbe>();
        batch.push_back({0, pc, p});
        probes.push_back(std::move(p));
    }
    ASSERT_EQ(e.probes().insertBatch(batch), batch.size());
    EXPECT_EQ(e.instrumentationEpoch, epoch0 + 1);
    EXPECT_EQ(e.stats.fusionSplits.value(), splits0 + numWindows);
    EXPECT_EQ(fs.fusedWindows.size(), numWindows);
    for (const FusedWindow& w : fs.fusedWindows) {
        EXPECT_GT(w.probeRefs, 0u);
        // Split + probed at the head: dcode mirrors the OP_PROBE
        // overwrite instead of the superinstruction byte.
        EXPECT_EQ(fs.dcode[w.headPc], OP_PROBE);
        EXPECT_EQ(fs.code[w.headPc], OP_PROBE);
    }

    // Split execution: identical result. Probes on live instructions
    // all fire; `end` bytes a branch jumps past never dispatch.
    EXPECT_EQ(wizpp::test::run1(e, "run", args).f64(), want.f64());
    size_t fired = 0;
    for (const auto& p : probes) {
        if (p->count > 0) fired++;
    }
    EXPECT_GE(fired, probes.size() - 4);

    // Batched detach (insertBatch moved the shared_ptrs out of the
    // insert vector, so the detach vector is rebuilt): one epoch bump,
    // every window re-fuses, and the dcode annotation is
    // byte-identical to the pre-probe state.
    uint64_t refusions0 = e.stats.fusionRefusions.value();
    std::vector<ProbeManager::SiteProbe> detach;
    for (size_t i = 0; i < pcs.size(); i++) {
        detach.push_back({0, pcs[i], probes[i]});
    }
    EXPECT_EQ(e.probes().removeBatch(detach), detach.size());
    EXPECT_EQ(e.instrumentationEpoch, epoch0 + 2);
    EXPECT_EQ(e.stats.fusionRefusions.value(), refusions0 + numWindows);
    EXPECT_EQ(fs.dcode, fusedDcode);
    for (const FusedWindow& w : fs.fusedWindows) {
        EXPECT_EQ(w.probeRefs, 0u);
        EXPECT_EQ(fs.dcode[w.headPc], w.sop);
    }

    // Re-fused execution still matches.
    EXPECT_EQ(wizpp::test::run1(e, "run", args).f64(), want.f64());
}

TEST(FusionProbeSplit, SingleProbeInsideWindowSplitsOnlyThatWindow)
{
    auto eng = wizpp::test::makeEngine(kIdxLoopWat, interpConfig(true));
    Engine& e = *eng;
    FuncState& fs = e.funcState(0);
    const FusedWindow* idx = findWindow(fs, SOP_IDX_F64_LOAD);
    ASSERT_NE(idx, nullptr);
    uint32_t headPc = idx->headPc;

    // A mid-window pc (the i32.const member, 2 bytes after the head):
    // the head byte is NOT probed, so the split restores the original
    // single opcode there while the probe overwrite lands mid-window.
    uint32_t midPc = headPc + 2;
    auto probe = std::make_shared<CountProbe>();
    ASSERT_TRUE(e.probes().insertLocal(0, midPc, probe));

    const FusedWindow* after = findWindow(fs, SOP_IDX_F64_LOAD);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->probeRefs, 1u);
    EXPECT_EQ(fs.dcode[headPc], OP_LOCAL_GET);
    EXPECT_EQ(fs.dcode[midPc], OP_PROBE);
    // Other windows stay fused.
    const FusedWindow* brIf = findWindow(fs, SOP_GET_GET_GE_S_BRIF);
    ASSERT_NE(brIf, nullptr);
    EXPECT_EQ(brIf->probeRefs, 0u);
    EXPECT_EQ(fs.dcode[brIf->headPc], brIf->sop);

    std::vector<Value> args{Value::makeI32(12)};
    EXPECT_EQ(wizpp::test::run1(e, "run", args).f64(), 0.0);
    EXPECT_EQ(probe->count, 12u);

    ASSERT_TRUE(e.probes().removeLocal(0, midPc, probe.get()));
    const FusedWindow* refused = findWindow(fs, SOP_IDX_F64_LOAD);
    ASSERT_NE(refused, nullptr);
    EXPECT_EQ(refused->probeRefs, 0u);
    EXPECT_EQ(fs.dcode[headPc], refused->sop);
    EXPECT_EQ(wizpp::test::run1(e, "run", args).f64(), 0.0);
}

TEST(FusionProbeSplit, ChurnedEngineTraceMatchesUnfusedGolden)
{
    // Split -> re-fuse churn before recording: the trace recorded on a
    // re-fused engine must equal the unfused golden byte for byte.
    Module m = mustParse(kIdxLoopWat);
    auto points = everyPcOfFunc0(m);
    std::vector<Value> args{Value::makeI32(30)};
    std::vector<uint8_t> golden = recordTrace(
        mustParse(kIdxLoopWat), interpConfig(false), "run", args, points);
    ASSERT_FALSE(golden.empty());

    Engine eng(interpConfig(true));
    ASSERT_TRUE(eng.loadModule(mustParse(kIdxLoopWat)).ok());
    TraceRecorder rec;
    eng.attachMonitor(&rec);
    for (const auto& fp : points) {
        ASSERT_TRUE(rec.addProbePoint(fp.first, fp.second));
    }
    // Churn an unrelated probe batch through every pc and back out, so
    // the recorded run executes on re-fused windows. (insertBatch
    // consumes the vector's shared_ptrs; detach gets its own copy.)
    std::vector<std::shared_ptr<CountProbe>> churn;
    std::vector<ProbeManager::SiteProbe> batch, detach;
    for (const auto& fp : points) {
        auto p = std::make_shared<CountProbe>();
        batch.push_back({fp.first, fp.second, p});
        detach.push_back({fp.first, fp.second, p});
        churn.push_back(std::move(p));
    }
    ASSERT_EQ(eng.probes().insertBatch(batch), batch.size());
    ASSERT_EQ(eng.probes().removeBatch(detach), detach.size());

    ASSERT_TRUE(eng.instantiate().ok());
    rec.setInvocation("run", args);
    auto r = eng.callExport("run", args);
    ASSERT_TRUE(r.ok());
    rec.finish(TrapReason::None, r.value());
    EXPECT_EQ(golden, rec.bytes());
}

// ---------------------------------------------------------------------
// Pair-profile determinism (the fusion table's mining data source)
// ---------------------------------------------------------------------

namespace {

std::string
pairReportFor(const BenchProgram* p, EngineConfig cfg)
{
    Engine eng(cfg);
    EXPECT_TRUE(eng.loadModule(mustParse(p->wat)).ok());
    PairProfileMonitor mon;
    eng.attachMonitor(&mon);
    EXPECT_TRUE(eng.instantiate().ok());
    auto r = eng.callExport(p->entry, {Value::makeI32(1)});
    EXPECT_TRUE(r.ok());
    EXPECT_GT(mon.profile().instructions, 0u);
    std::ostringstream oss;
    mon.profile().writeReport(oss);
    return oss.str();
}

} // namespace

TEST(PairProfile, ReportByteIdenticalAcrossBackendsAndFusion)
{
    // `wizeng --profile-pairs` pins execution to Probed dispatch over
    // the singles stream, so the report must be byte-identical across
    // the three backends and with fusion on or off — a fused engine
    // profiles the same adjacencies the miner ranks.
    const BenchProgram* p = findProgram("trisolv");
    ASSERT_NE(p, nullptr);
    std::string golden = pairReportFor(p, interpConfig(false));
    ASSERT_FALSE(golden.empty());
    EXPECT_NE(golden.find("pair "), std::string::npos);
    for (DispatchBackend b : allBackends()) {
        for (bool fuse : {false, true}) {
            std::string got = pairReportFor(p, interpConfig(fuse, b));
            EXPECT_EQ(golden, got)
                << dispatchBackendName(b) << " fuse=" << fuse;
        }
    }
}
