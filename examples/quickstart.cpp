/**
 * @file
 * Quickstart: load a Wasm module (from WAT), run it, then attach
 * monitors and dynamically insert/remove probes — the 90-second tour
 * of the instrumentation API.
 */

#include <iostream>

#include "engine/engine.h"
#include "monitors/monitors.h"
#include "probes/frameaccessor.h"
#include "wat/wat.h"

using namespace wizpp;

int
main()
{
    // A module computing the n-th Fibonacci number two ways.
    const char* wat = R"((module
      (func $fib_rec (export "fib_rec") (param $n i32) (result i64)
        (if (result i64) (i32.lt_u (local.get $n) (i32.const 2))
          (then (i64.extend_i32_u (local.get $n)))
          (else (i64.add
            (call $fib_rec (i32.sub (local.get $n) (i32.const 1)))
            (call $fib_rec (i32.sub (local.get $n) (i32.const 2)))))))
      (func (export "fib_iter") (param $n i32) (result i64)
        (local $a i64) (local $b i64) (local $t i64) (local $i i32)
        (local.set $b (i64.const 1))
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $t (i64.add (local.get $a) (local.get $b)))
          (local.set $a (local.get $b))
          (local.set $b (local.get $t))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
        (local.get $a))
    ))";

    // 1. Parse, load, instantiate.
    auto module = parseWat(wat);
    if (!module.ok()) {
        std::cerr << "parse error: " << module.error().toString() << "\n";
        return 1;
    }
    EngineConfig config;
    config.mode = ExecMode::Jit;  // multi-tier engine, compiled tier on
    Engine engine(config);
    if (!engine.loadModule(module.take()).ok() ||
        !engine.instantiate().ok()) {
        std::cerr << "engine setup failed\n";
        return 1;
    }

    // 2. Plain execution.
    auto r = engine.callExport("fib_iter", {Value::makeI32(50)});
    std::cout << "fib_iter(50) = " << r.value()[0].i64() << "\n";

    // 3. Attach off-the-shelf monitors (the Monitor Zoo).
    HotnessMonitor hotness;
    BranchMonitor branches;
    engine.attachMonitor(&hotness);
    engine.attachMonitor(&branches);
    engine.callExport("fib_rec", {Value::makeI32(18)});
    std::cout << "\nfib_rec(18) under hotness+branch monitors:\n";
    hotness.report(std::cout);
    branches.report(std::cout);

    // 4. Hand-rolled probes: count recursive calls and peek at frames.
    int32_t fibIdx = engine.findFunc("fib_rec");
    auto counter = std::make_shared<CountProbe>();
    engine.probes().insertLocal(fibIdx, 0, counter);

    uint32_t maxDepth = 0;
    engine.probes().insertLocal(fibIdx, 0, makeProbe(
        [&maxDepth](ProbeContext& ctx) {
            maxDepth = std::max(maxDepth, ctx.accessor()->depth() + 1);
        }));
    engine.callExport("fib_rec", {Value::makeI32(18)});
    std::cout << "\nfib_rec(18): " << counter->count
              << " activations, max call depth " << maxDepth << "\n";

    // 5. Dynamic removal: probes impose zero overhead once removed.
    engine.probes().removeLocal(fibIdx, 0, counter.get());
    std::cout << "probed sites remaining: "
              << engine.probes().numProbedSites() << " (counter removed, "
              << "depth probe still installed)\n";
    return 0;
}
