/**
 * @file
 * Profiling example: run corpus programs under the calling-context
 * tree profiler and the dynamic call-graph monitor, then emit a
 * folded-stack flame graph (feed the output to flamegraph.pl).
 *
 *   flamegraph_profiler [program-name] > folded.txt
 */

#include <iostream>

#include "engine/engine.h"
#include "monitors/monitors.h"
#include "suites/suites.h"
#include "wat/wat.h"

using namespace wizpp;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "richards";
    const BenchProgram* program = findProgram(name);
    if (!program) {
        std::cerr << "unknown program: " << name << "\navailable:";
        for (const auto& p : allPrograms()) std::cerr << " " << p.name;
        std::cerr << " richards\n";
        return 1;
    }

    auto module = parseWat(program->wat);
    if (!module.ok()) {
        std::cerr << "parse: " << module.error().toString() << "\n";
        return 1;
    }
    EngineConfig config;
    config.mode = ExecMode::Jit;
    Engine engine(config);
    if (!engine.loadModule(module.take()).ok()) return 1;

    CallTreeMonitor profiler;
    CallsMonitor calls;
    engine.attachMonitor(&profiler);
    engine.attachMonitor(&calls);

    if (!engine.instantiate().ok()) return 1;
    auto r = engine.callExport(program->entry,
                               {Value::makeI32(program->defaultN)});
    if (!r.ok()) {
        std::cerr << "run failed: " << r.error().toString() << "\n";
        return 1;
    }

    std::cerr << "== calling-context tree ==\n";
    profiler.report(std::cerr);
    std::cerr << "\n== dynamic call graph ==\n";
    calls.report(std::cerr);

    // Folded stacks on stdout, ready for flamegraph.pl.
    profiler.writeFlameGraph(std::cout);
    return 0;
}
