/**
 * @file
 * Coverage-guided input search — the fuzzing-style analysis the paper
 * lists among advanced FrameAccessor/probe uses (Section 2.3).
 *
 * The target hides a "bug" behind nested input conditions. The fuzzer
 * mutates inputs and keeps those that increase instruction coverage,
 * measured with the CoverageMonitor (whose self-removing probes make
 * already-covered paths free — dynamic probe removal at work).
 */

#include <cstdint>
#include <iostream>
#include <random>
#include <vector>

#include "engine/engine.h"
#include "monitors/monitors.h"
#include "wat/wat.h"

using namespace wizpp;

namespace {

// The "application under test": distinct paths guarded by magic values.
const char* kTargetWat = R"((module
  (func (export "target") (param $a i32) (param $b i32) (result i32)
    (if (i32.eq (i32.and (local.get $a) (i32.const 0xff)) (i32.const 0x5a))
      (then
        (if (i32.gt_u (local.get $b) (i32.const 1000))
          (then
            (if (i32.eq (i32.rem_u (local.get $b) (i32.const 7))
                        (i32.const 3))
              (then (return (i32.const 999))))  ;; the "bug"
            (return (i32.const 3))))
        (return (i32.const 2))))
    (i32.const 1))
))";

} // namespace

int
main()
{
    auto module = parseWat(kTargetWat);
    if (!module.ok()) return 1;
    Engine engine(EngineConfig{});
    if (!engine.loadModule(module.take()).ok()) return 1;

    CoverageMonitor coverage;
    engine.attachMonitor(&coverage);
    if (!engine.instantiate().ok()) return 1;

    std::mt19937 rng(42);
    std::vector<std::pair<uint32_t, uint32_t>> corpus = {{0, 0}};
    double bestCoverage = 0;
    int executions = 0;
    bool bugFound = false;

    for (int round = 0; round < 40000 && !bugFound; round++) {
        // Pick a corpus entry and mutate it.
        auto [a, b] = corpus[rng() % corpus.size()];
        switch (rng() % 4) {
          case 0: a ^= 1u << (rng() % 32); break;
          case 1: b ^= 1u << (rng() % 32); break;
          case 2: a = rng(); break;
          case 3: b += static_cast<uint32_t>(rng() % 2048); break;
        }
        auto r = engine.callExport(
            "target", {Value::makeI32(a), Value::makeI32(b)});
        executions++;
        if (!r.ok()) continue;
        if (r.value()[0].i32() == 999) {
            std::cout << "bug reached with a=0x" << std::hex << a
                      << " b=" << std::dec << b << " after "
                      << executions << " executions\n";
            bugFound = true;
            break;
        }
        double c = coverage.totalCoverage();
        if (c > bestCoverage) {
            bestCoverage = c;
            corpus.push_back({a, b});
            std::cout << "new coverage " << c * 100 << "% with a=0x"
                      << std::hex << a << std::dec << " b=" << b << "\n";
        }
    }

    std::cout << "final coverage: " << bestCoverage * 100 << "%, corpus "
              << corpus.size() << " inputs, " << executions
              << " executions\n";
    coverage.report(std::cout);
    return bugFound ? 0 : 2;
}
