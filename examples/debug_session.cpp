/**
 * @file
 * Debugger example: a scripted session of the bytecode-level REPL
 * (breakpoints, backtraces, single-step, and fix-and-continue via
 * frame modification — which forces deoptimization of compiled
 * frames, paper Section 2.4.2).
 *
 * The buggy program computes an average but divides by the wrong
 * count; the session patches the divisor local in a live frame.
 */

#include <iostream>
#include <sstream>

#include "engine/engine.h"
#include "monitors/debugger.h"
#include "wasm/opcodes.h"
#include "wat/wat.h"

using namespace wizpp;

int
main()
{
    const char* wat = R"((module
      (memory 1)
      (func $sum (param $n i32) (result i32)
        (local $i i32) (local $acc i32)
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $acc (i32.add (local.get $acc)
            (i32.load (i32.mul (local.get $i) (i32.const 4)))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
        (local.get $acc))
      (func $average (export "average") (param $n i32) (result i32)
        (local $total i32) (local $divisor i32)
        (local.set $total (call $sum (local.get $n)))
        ;; BUG: divisor is off by one
        (local.set $divisor (i32.add (local.get $n) (i32.const 1)))
        (i32.div_u (local.get $total) (local.get $divisor)))
      (func (export "setup") (param $n i32)
        (local $i i32)
        (block $x (loop $l
          (br_if $x (i32.ge_u (local.get $i) (local.get $n)))
          (i32.store (i32.mul (local.get $i) (i32.const 4))
                     (i32.const 10))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l))))
    ))";

    auto module = parseWat(wat);
    if (!module.ok()) return 1;
    EngineConfig config;
    config.mode = ExecMode::Jit;  // fix-and-continue deopts this frame
    Engine engine(config);
    if (!engine.loadModule(module.take()).ok()) return 1;

    // Locate the buggy division so the script can break on it.
    int32_t avg = engine.findFunc("average");
    FuncState& fs = engine.funcState(avg);
    uint32_t divPc = 0;
    for (uint32_t pc : fs.sideTable.instrBoundaries) {
        if (fs.decl->code[pc] == OP_I32_DIV_U) divPc = pc;
    }

    // The scripted session: break at the division; when it hits,
    // inspect the frame, patch the divisor, single-step, continue.
    std::istringstream script(
        "break average " + std::to_string(divPc) + "\n"
        "run\n"
        "locals\n"
        "stack\n"
        "bt\n"
        "setop 0 8\n"   // divisor operand := 8 (fix-and-continue)
        "step\n"
        "continue\n");
    std::ostringstream transcript;
    DebuggerMonitor debugger(script, transcript);
    engine.attachMonitor(&debugger);
    if (!engine.instantiate().ok()) return 1;

    engine.callExport("setup", {Value::makeI32(8)});
    auto result = engine.callExport("average", {Value::makeI32(8)});

    std::cout << transcript.str();
    if (result.ok()) {
        std::cout << "\naverage(8 tens) = " << result.value()[0].i32()
                  << "  (the unpatched program prints 8; the patched "
                     "frame prints 10)\n";
    }
    std::cout << "breakpoint hits: " << debugger.breakpointHits
              << ", frame deopts: " << engine.stats.frameDeopts << "\n";
    return debugger.breakpointHits == 1 ? 0 : 2;
}
