/**
 * @file
 * wizeng-style command-line runner (paper Section 3:
 * `wizeng --monitors=MyMonitor module.wasm`).
 *
 * Usage:
 *   wizeng [options] <module.wat|module.wasm|@program> [args...]
 *     --monitors=m1,m2     attach monitors (see --help for names)
 *     --analyze=stack|taint|leaks  static analysis report, no execution
 *                          (see docs/ANALYSIS.md)
 *     --audit-lowering[=selftest]  audit probe lowering decisions
 *                          against static facts instead of running
 *     --mode=int|jit|tiered   execution mode (default jit)
 *     --dispatch=threaded|switch|table   interpreter dispatch backend
 *                          (default: the build's WIZPP_DISPATCH)
 *     --no-fuse            disable superinstruction fusion in the
 *                          interpreter (see docs/INTERPRETER.md)
 *     --profile-pairs=<file>  profile executed opcode pairs/triples
 *                          (fusion candidates) to <file>
 *     --no-intrinsify[=count,operand,entry,fused]
 *                          disable probe intrinsification, entirely or
 *                          per lowering kind (see docs/JIT.md)
 *     --invoke=<export>    entry point (default: "run", then "main")
 *     --list-programs      list the built-in benchmark corpus
 *     --trace=<file>       record the execution trace to <file>
 *     --replay-check=<file>  re-run and verify against a recorded trace
 *     --trace-report=<f1[,f2...]>  offline coverage + profile report
 *                          over saved traces (no module needed)
 *     --emit-wasm=<file>   encode the module to binary and exit
 *     --metrics[=text|json|csv]  dump the engine metrics registry
 *     --timeline=<file>    write a Chrome trace-event timeline
 *     --profile=<file>     sampling profiler -> folded stacks
 *     --profile-budget=<n> probe fires between samples (default 4096)
 *     --profile-every-instr  sample sites at every instruction
 *     --fuzz=<entry>       coverage-guided fuzzing campaign against an
 *                          exported entry (docs/FUZZING.md)
 *     --fuzz-runs/--fuzz-seed/--fuzz-max-arg/--fuzz-out  campaign knobs
 *     --shake=grow,short,random  deterministic perturbation modes
 *     --shake-seed=<n>     perturbation seed (recorded)
 *     --repro=<file>       verify a fuzz reproducer across all tiers
 *     --serve=<entry>      serving mode: drive <entry> on an instance
 *                          pool of worker threads (docs/SERVING.md)
 *     --serve-threads/--serve-requests/--serve-instrument  pool knobs
 *   `@name` runs a built-in corpus program (e.g. @gemm, @richards).
 *
 * Every flag lives in kFlags below: --help renders the table, and an
 * unknown --flag exits non-zero with a nearest-flag suggestion (both
 * held by scripts/check_help.sh in ctest).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/audit.h"
#include "analysis/taint.h"
#include "engine/engine.h"
#include "fuzz/fuzzer.h"
#include "fuzz/repro.h"
#include "fuzz/shake.h"
#include "monitors/debugger.h"
#include "monitors/monitors.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "serve/pool.h"
#include "suites/suites.h"
#include "trace/pairprofile.h"
#include "trace/reader.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "trace/sidecar.h"
#include "wasm/decoder.h"
#include "wasm/disasm.h"
#include "wasm/encoder.h"
#include "wat/wat.h"

using namespace wizpp;

namespace {

/**
 * The single source of truth for the CLI surface: --help renders this
 * table and unknown-flag handling suggests from it, so a flag cannot
 * ship without appearing in both.
 */
struct FlagSpec
{
    const char* name;  ///< "--flag"
    const char* arg;   ///< "=<value>", "[=value]" or ""
    const char* help;  ///< one-liner
};

constexpr FlagSpec kFlags[] = {
    {"--monitors", "=<m1,m2,...>",
     "attach monitors (names listed below)"},
    {"--mode", "=int|jit|tiered", "execution mode (default jit)"},
    {"--dispatch", "=threaded|switch|table",
     "interpreter dispatch backend (default: build setting)"},
    {"--no-fuse", "",
     "disable interpreter superinstruction fusion (docs/INTERPRETER.md)"},
    {"--profile-pairs", "=<file>",
     "write executed opcode pair/triple histograms (fusion candidates) "
     "to <file>"},
    {"--no-intrinsify", "[=count,operand,entry,fused,coverage]",
     "disable probe intrinsification, all kinds or a subset"},
    {"--invoke", "=<export>", "entry point (default run, then main)"},
    {"--list-programs", "", "list built-in corpus programs and exit"},
    {"--trace", "=<file>", "record the execution trace to <file>"},
    {"--replay-check", "=<file>",
     "re-run and verify against a recorded trace"},
    {"--trace-report", "=<f1[,f2...]>",
     "offline coverage + profile report over saved traces"},
    {"--emit-wasm", "=<file>",
     "encode the module to binary and exit"},
    {"--analyze", "=stack|taint|leaks",
     "static analysis report, no execution (docs/ANALYSIS.md)"},
    {"--audit-lowering", "[=selftest]",
     "audit probe lowering against static facts instead of running"},
    {"--metrics", "[=text|json|csv]",
     "dump the engine metrics registry after the run"},
    {"--timeline", "=<file>",
     "write a Chrome trace-event timeline of the run to <file>"},
    {"--profile", "=<file>",
     "sampling profiler: write folded stacks to <file>"},
    {"--profile-budget", "=<n>",
     "profiler probe fires between samples (default 4096)"},
    {"--profile-every-instr", "",
     "profiler samples at every instruction, not entries+loops"},
    {"--fuzz", "=<entry>",
     "coverage-guided fuzzing campaign against an exported entry"},
    {"--fuzz-runs", "=<n>", "fuzz executions to attempt (default 256)"},
    {"--fuzz-seed", "=<n>", "fuzz campaign PRNG seed (default 1)"},
    {"--fuzz-max-arg", "=<n>",
     "clamp integer entry args to [0, n] (default 64; 0 = raw)"},
    {"--fuzz-out", "=<dir>",
     "write minimized finding reproducers to <dir>"},
    {"--shake", "=<grow,short,random>",
     "deterministic perturbation: grow failures, short reads, random "
     "host results"},
    {"--shake-seed", "=<n>", "perturbation seed (default 1, recorded)"},
    {"--repro", "=<file>",
     "verify a fuzz reproducer file across all three tiers"},
    {"--serve", "=<entry>",
     "serving mode: drive <entry> across an instance pool "
     "(docs/SERVING.md)"},
    {"--serve-threads", "=<n>",
     "serving worker threads / instances (default 4)"},
    {"--serve-requests", "=<n>",
     "invocations the request driver submits (default 1024)"},
    {"--serve-instrument", "=none|entry|hot",
     "fleet-attach count probes mid-flight: none, function entries, "
     "or entries+loop heads"},
    {"--help", "", "show this help and exit"},
};

void
usage()
{
    std::cout <<
        "usage: wizeng [options] <module.wat|module.wasm|@program> "
        "[i32 args...]\n";
    for (const FlagSpec& f : kFlags) {
        std::string lhs = std::string("  ") + f.name + f.arg;
        if (lhs.size() < 26) lhs.resize(26, ' ');
        std::cout << lhs << " " << f.help << "\n";
    }
    std::cout << "monitors:";
    for (const auto& n : monitorNames()) std::cout << " " << n;
    std::cout << " debugger\n"
        "`@name` runs a built-in corpus program (see "
        "--list-programs).\n";
}

size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); j++) row[j] = j;
    for (size_t i = 1; i <= a.size(); i++) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); j++) {
            size_t up = row[j];
            row[j] = std::min(
                {up + 1, row[j - 1] + 1,
                 diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

/** Rejects an unrecognized --flag with the nearest known flag. */
int
unknownFlag(const std::string& a)
{
    std::string name = a.substr(0, a.find('='));
    const FlagSpec* best = nullptr;
    size_t bestDist = 5;  // suggestions past this are noise
    for (const FlagSpec& f : kFlags) {
        if (name == f.name) {
            // Known flag, malformed use: missing or unexpected value.
            std::cerr << "flag " << f.name << " is used as " << f.name
                      << f.arg << "\n";
            return 1;
        }
        size_t d = editDistance(name, f.name);
        if (d < bestDist) {
            bestDist = d;
            best = &f;
        }
    }
    std::cerr << "unknown flag " << name;
    if (best) std::cerr << " (did you mean " << best->name << "?)";
    std::cerr << "\nrun wizeng --help for the flag list\n";
    return 1;
}

/** Offline sidecar mode: merge and report saved traces; no execution. */
int
traceReport(const std::vector<std::string>& files)
{
    TraceAnalysis merged;
    for (const std::string& f : files) {
        auto r = readTraceFile(f);
        if (!r.ok()) {
            std::cerr << f << ": " << r.error().toString() << "\n";
            return 1;
        }
        merged.merge(analyzeTrace(r.value()));
    }
    writeCoverageReport(std::cout, merged);
    writeProfileReport(std::cout, merged);
    return 0;
}

/**
 * `--analyze=<kind>`: validate, run the dataflow engine, print the
 * requested static report. No engine, no execution — host imports need
 * not be linkable. Exit 0 means "clean" (no findings, no divergences).
 */
int
runAnalyze(const Module& module, const std::string& kind)
{
    using namespace analysis;
    if (kind != "stack" && kind != "taint" && kind != "leaks") {
        std::cerr << "unknown analyze kind '" << kind
                  << "' (stack, taint, leaks)\n";
        return 1;
    }
    auto ar = Analysis::build(module);
    if (!ar.ok()) {
        std::cerr << "validate: " << ar.error().toString() << "\n";
        return 1;
    }
    const Analysis& an = ar.value();

    size_t divergences = 0;
    for (uint32_t i = 0; i < an.numFuncs(); i++) {
        for (const std::string& d : an.func(i).divergences) {
            std::cerr << "divergence: " << d << "\n";
            divergences++;
        }
    }

    if (kind == "stack") {
        for (uint32_t i = 0; i < an.numFuncs(); i++) {
            const FuncFacts& ff = an.func(i);
            if (!ff.analyzed) continue;
            const FuncDecl& f = module.functions[i];
            std::cout << "func #" << i;
            if (!f.name.empty()) std::cout << " (" << f.name << ")";
            std::cout << ": " << ff.pcs.size() << " instr(s), "
                      << ff.reachableCount << " reachable\n";
            for (uint32_t pc : ff.pcs) {
                const InstrFacts* fa = ff.at(pc);
                std::cout << "  +" << pc << ": ";
                if (!fa || !fa->reachable) {
                    std::cout << "unreachable";
                } else {
                    std::cout << "depth=" << fa->depth();
                    if (!fa->stack.empty()) {
                        const AbstractValue& top = fa->stack.back();
                        std::cout << " top=" << absTypeName(top.type)
                                  << "(" << originName(top.origin)
                                  << ")";
                    }
                }
                std::cout << "  " << disassembleInstr(f.code, pc)
                          << "\n";
            }
        }
        return divergences ? 1 : 0;
    }

    TaintReport rep = analyzeTaint(module, an);
    bool leaksOnly = kind == "leaks";
    if (!leaksOnly) {
        for (uint32_t i = 0; i < an.numFuncs(); i++) {
            const FuncFacts& ff = an.func(i);
            if (!ff.analyzed || !ff.pointerLocals) continue;
            std::cout << "func #" << i << ": pointer-like locals:";
            for (uint32_t l = 0; l < 64; l++) {
                if (ff.pointerLocals & (1ull << l)) {
                    std::cout << " " << l
                              << (l == 63 ? "+" : "");
                }
            }
            std::cout << "\n";
        }
    }
    size_t shown = 0;
    for (const LeakFinding& f : rep.findings) {
        if (leaksOnly && !f.definite) continue;
        std::cout << f.message << "\n";
        shown++;
    }
    if (leaksOnly) {
        std::cout << shown << " address-leak finding(s)\n";
    } else {
        std::cout << shown << " taint flow(s) (" << rep.definiteCount
                  << " definite, " << rep.potentialCount
                  << " potential)\n";
    }
    return (shown || divergences) ? 1 : 0;
}

/**
 * Deliberately mis-declared probe for `--audit-lowering=selftest`: it
 * claims to consult the top-of-stack value while planted at function
 * entry, where the operand stack is statically empty. The audit must
 * reject it.
 */
class MisdeclaredAccessProbe : public EntryExitProbe
{
  public:
    bool needsTopOfStack() const override { return true; }
    void fireActivation(const Activation&) override {}
};

/** `--audit-lowering[=selftest]`: audits every probed site. */
int
runAudit(Engine& engine, bool selftest)
{
    if (selftest) {
        // Plant the mis-declared probe at the entry pc of the first
        // non-imported function.
        for (uint32_t i = 0; i < engine.numFuncs(); i++) {
            FuncState& fs = engine.funcState(i);
            if (fs.decl->imported) continue;
            std::vector<ProbeManager::SiteProbe> batch;
            batch.push_back(
                {i, 0, std::make_shared<MisdeclaredAccessProbe>()});
            engine.probes().insertBatch(batch);
            break;
        }
    }
    analysis::AuditResult res = analysis::auditProbeLowering(engine);
    for (const analysis::AuditFinding& v : res.violations) {
        std::cout << v.message << "\n";
    }
    std::cout << res.sitesAudited << " site(s) audited, "
              << res.violations.size() << " violation(s)\n";
    return res.violations.empty() ? 0 : 1;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

/**
 * The --serve-instrument fleet plan: a CountProbe at every function
 * entry ("entry": call-profiler-shaped, fully jit-intrinsified) plus
 * every loop header ("hot": hotness-profiler-shaped). Runs on each
 * worker's own thread at a quiescent point (docs/SERVING.md).
 */
std::vector<ProbeManager::SiteProbe>
serveInstrumentPlan(Engine& eng, bool loopHeads)
{
    std::vector<ProbeManager::SiteProbe> probes;
    for (uint32_t fi = 0; fi < eng.numFuncs(); fi++) {
        FuncState& fs = eng.funcState(fi);
        if (fs.decl->imported ||
            fs.sideTable.instrBoundaries.empty()) {
            continue;
        }
        probes.push_back({fi, fs.sideTable.instrBoundaries.front(),
                          std::make_shared<CountProbe>()});
        if (loopHeads) {
            for (uint32_t pc : fs.sideTable.loopHeaders) {
                probes.push_back(
                    {fi, pc, std::make_shared<CountProbe>()});
            }
        }
    }
    return probes;
}

/**
 * The --serve request driver: submit --serve-requests invocations of
 * the entry across the pool; with --serve-instrument, the first half
 * runs clean, then the fleet is batch-attached mid-flight (the RCU
 * path) and the second half runs instrumented.
 */
int
runServe(Module module, const EngineConfig& config,
         const std::string& entry, uint32_t threads, uint32_t requests,
         const std::string& instrument, std::vector<Value> args,
         uint32_t defaultN)
{
    auto vr = ValidatedModule::create(std::move(module));
    if (!vr.ok()) {
        std::cerr << "serve: " << vr.error().toString() << "\n";
        return 1;
    }
    std::shared_ptr<const ValidatedModule> vm = vr.take();
    serve::InstancePool pool(vm, config, serve::PoolOptions{threads});
    auto sr = pool.start();
    if (!sr.ok()) {
        std::cerr << "serve: " << sr.error().toString() << "\n";
        return 1;
    }
    int32_t f = pool.findFunc(entry);
    if (f < 0) {
        std::cerr << "serve: no function '" << entry << "'\n";
        return 1;
    }
    const FuncType& sig = vm->module.funcType(f);
    while (args.size() < sig.params.size()) {
        args.push_back(Value::makeI32(defaultN));
    }

    auto t0 = std::chrono::steady_clock::now();
    uint32_t firstWave =
        instrument == "none" ? requests : requests / 2;
    for (uint32_t i = 0; i < firstWave; i++) {
        pool.submit(static_cast<uint32_t>(f), args);
    }
    uint64_t batch = 0;
    if (instrument != "none") {
        bool loopHeads = instrument == "hot";
        batch = pool.attachEach([loopHeads](Engine& eng, uint32_t) {
            return serveInstrumentPlan(eng, loopHeads);
        });
        for (uint32_t i = firstWave; i < requests; i++) {
            pool.submit(static_cast<uint32_t>(f), args);
        }
    }
    pool.drain();
    double secs =
        (double)std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        1e6;

    uint64_t fires = 0;
    uint64_t instrumented = 0;
    uint64_t maxPauseUs = 0;
    for (uint32_t w = 0; w < pool.workers(); w++) {
        instrumented +=
            pool.workerStats(w).instrumentedInvocations.load();
        maxPauseUs = std::max(
            maxPauseUs, pool.workerStats(w).applyPauseMaxUs.load());
        if (batch != 0) {
            for (const auto& sp : pool.attachedProbes(batch, w)) {
                fires +=
                    static_cast<CountProbe*>(sp.probe.get())->count;
            }
        }
    }

    std::cout << "serve: " << pool.invocations()
              << " invocation(s) on " << pool.workers()
              << " worker(s), " << pool.traps() << " trap(s), "
              << pool.executor().steals() << " steal(s)\n";
    std::cout << "serve: " << std::fixed << std::setprecision(1)
              << ((double)pool.invocations() / (secs > 0 ? secs : 1))
              << " inv/s, p50=" << pool.latencyQuantileUs(0.5)
              << "us p99=" << pool.latencyQuantileUs(0.99) << "us\n";
    if (batch != 0) {
        std::cout << "serve: instrumented " << instrumented
                  << " invocation(s), " << fires
                  << " probe fire(s), max apply pause " << maxPauseUs
                  << "us\n";
    }
    pool.stop();
    return pool.traps() == 0 ? 0 : 42;
}

} // namespace

int
main(int argc, char** argv)
{
    EngineConfig config;
    config.mode = ExecMode::Jit;
    std::vector<std::string> monitorList;
    std::string entry;
    std::string target;
    std::vector<Value> args;
    bool useDebugger = false;
    std::string traceFile;
    std::string replayFile;
    std::string emitWasmFile;
    std::string analyzeKind;
    bool auditLowering = false;
    bool auditSelftest = false;
    bool metricsRequested = false;
    obs::MetricsFormat metricsFormat = obs::MetricsFormat::Text;
    std::string timelineFile;
    std::string profileFile;
    std::string pairProfileFile;
    obs::SamplingProfiler::Options profOpts;
    fuzz::FuzzOptions fuzzOpts;
    bool fuzzRequested = false;
    std::string fuzzOutDir;
    std::string shakeModes;
    bool shakeRequested = false;
    std::string reproFile;
    std::string serveEntry;
    bool serveRequested = false;
    uint32_t serveThreads = 4;
    uint32_t serveRequests = 1024;
    std::string serveInstrument = "none";

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list-programs") {
            for (const auto& p : allPrograms()) {
                std::cout << p.suite << "/" << p.name << "\n";
            }
            std::cout << "misc/richards\n";
            return 0;
        } else if (a.rfind("--monitors=", 0) == 0) {
            monitorList = split(a.substr(11), ',');
        } else if (a.rfind("--mode=", 0) == 0) {
            std::string m = a.substr(7);
            if (m == "int") config.mode = ExecMode::Interpreter;
            else if (m == "jit") config.mode = ExecMode::Jit;
            else if (m == "tiered") config.mode = ExecMode::Tiered;
            else {
                std::cerr << "unknown mode " << m << "\n";
                return 1;
            }
        } else if (a.rfind("--dispatch=", 0) == 0) {
            std::string d = a.substr(11);
            if (!parseDispatchBackend(d, &config.dispatch)) {
                std::cerr << "unknown dispatch backend " << d << "\n";
                return 1;
            }
        } else if (a == "--no-fuse") {
            config.fuseSuperinstructions = false;
        } else if (a.rfind("--profile-pairs=", 0) == 0) {
            pairProfileFile = a.substr(16);
            if (pairProfileFile.empty()) {
                std::cerr << "--profile-pairs needs a file name\n";
                return 1;
            }
        } else if (a == "--no-intrinsify") {
            config.intrinsifyCountProbe = false;
            config.intrinsifyOperandProbe = false;
            config.intrinsifyEntryExitProbe = false;
            config.intrinsifyFusedProbe = false;
            config.intrinsifyCoverageProbe = false;
        } else if (a.rfind("--no-intrinsify=", 0) == 0) {
            for (const std::string& kind : split(a.substr(16), ',')) {
                if (kind == "count") {
                    config.intrinsifyCountProbe = false;
                } else if (kind == "operand") {
                    config.intrinsifyOperandProbe = false;
                } else if (kind == "entry") {
                    config.intrinsifyEntryExitProbe = false;
                } else if (kind == "fused") {
                    config.intrinsifyFusedProbe = false;
                } else if (kind == "coverage") {
                    config.intrinsifyCoverageProbe = false;
                } else {
                    std::cerr << "unknown intrinsify kind '" << kind
                              << "' (count, operand, entry, fused, "
                                 "coverage)\n";
                    return 1;
                }
            }
        } else if (a.rfind("--invoke=", 0) == 0) {
            entry = a.substr(9);
        } else if (a.rfind("--trace=", 0) == 0) {
            traceFile = a.substr(8);
        } else if (a.rfind("--replay-check=", 0) == 0) {
            replayFile = a.substr(15);
        } else if (a.rfind("--trace-report=", 0) == 0) {
            return traceReport(split(a.substr(15), ','));
        } else if (a.rfind("--emit-wasm=", 0) == 0) {
            emitWasmFile = a.substr(12);
        } else if (a.rfind("--analyze=", 0) == 0) {
            analyzeKind = a.substr(10);
        } else if (a == "--audit-lowering") {
            auditLowering = true;
        } else if (a == "--audit-lowering=selftest") {
            auditLowering = true;
            auditSelftest = true;
        } else if (a == "--metrics" || a.rfind("--metrics=", 0) == 0) {
            metricsRequested = true;
            std::string f = a.size() > 9 ? a.substr(10) : "";
            if (!obs::parseMetricsFormat(f, &metricsFormat)) {
                std::cerr << "unknown metrics format '" << f
                          << "' (text, json, csv)\n";
                return 1;
            }
        } else if (a.rfind("--timeline=", 0) == 0) {
            timelineFile = a.substr(11);
        } else if (a.rfind("--profile=", 0) == 0) {
            profileFile = a.substr(10);
        } else if (a.rfind("--profile-budget=", 0) == 0) {
            profOpts.budget = strtoull(a.c_str() + 17, nullptr, 0);
            if (profOpts.budget == 0) {
                std::cerr << "--profile-budget must be >= 1\n";
                return 1;
            }
        } else if (a == "--profile-every-instr") {
            profOpts.everyInstruction = true;
        } else if (a.rfind("--fuzz=", 0) == 0) {
            fuzzOpts.entry = a.substr(7);
            fuzzRequested = true;
        } else if (a.rfind("--fuzz-runs=", 0) == 0) {
            fuzzOpts.runs = static_cast<uint32_t>(
                strtoul(a.c_str() + 12, nullptr, 0));
            if (fuzzOpts.runs == 0) {
                std::cerr << "--fuzz-runs must be >= 1\n";
                return 1;
            }
        } else if (a.rfind("--fuzz-seed=", 0) == 0) {
            fuzzOpts.seed = strtoull(a.c_str() + 12, nullptr, 0);
        } else if (a.rfind("--fuzz-max-arg=", 0) == 0) {
            fuzzOpts.maxArg = static_cast<uint32_t>(
                strtoul(a.c_str() + 15, nullptr, 0));
        } else if (a.rfind("--fuzz-out=", 0) == 0) {
            fuzzOutDir = a.substr(11);
        } else if (a.rfind("--shake=", 0) == 0) {
            shakeModes = a.substr(8);
            shakeRequested = true;
            fuzz::ShakeOptions probeParse;
            if (!fuzz::parseShakeModes(shakeModes, &probeParse)) {
                std::cerr << "unknown shake mode in '" << shakeModes
                          << "' (grow, short, random)\n";
                return 1;
            }
        } else if (a.rfind("--shake-seed=", 0) == 0) {
            fuzzOpts.shake.seed = strtoull(a.c_str() + 13, nullptr, 0);
            shakeRequested = true;
        } else if (a.rfind("--repro=", 0) == 0) {
            reproFile = a.substr(8);
        } else if (a.rfind("--serve=", 0) == 0) {
            serveEntry = a.substr(8);
            serveRequested = true;
            if (serveEntry.empty()) {
                std::cerr << "--serve needs an entry name\n";
                return 1;
            }
        } else if (a.rfind("--serve-threads=", 0) == 0) {
            serveThreads = static_cast<uint32_t>(
                strtoul(a.c_str() + 16, nullptr, 0));
            if (serveThreads == 0 || serveThreads > 256) {
                std::cerr << "--serve-threads must be in [1, 256]\n";
                return 1;
            }
        } else if (a.rfind("--serve-requests=", 0) == 0) {
            serveRequests = static_cast<uint32_t>(
                strtoul(a.c_str() + 17, nullptr, 0));
            if (serveRequests == 0) {
                std::cerr << "--serve-requests must be >= 1\n";
                return 1;
            }
        } else if (a.rfind("--serve-instrument=", 0) == 0) {
            serveInstrument = a.substr(19);
            if (serveInstrument != "none" &&
                serveInstrument != "entry" &&
                serveInstrument != "hot") {
                std::cerr << "--serve-instrument must be none, entry "
                             "or hot (got '"
                          << serveInstrument << "')\n";
                return 1;
            }
        } else if (a.rfind("--", 0) == 0) {
            // Only `--`-prefixed arguments are flags; bare words are
            // the target and numeric program arguments (which may be
            // negative, so a leading single `-` is not a flag).
            return unknownFlag(a);
        } else if (target.empty()) {
            target = a;
        } else {
            args.push_back(Value::makeI32(
                static_cast<int32_t>(strtol(a.c_str(), nullptr, 0))));
        }
    }
    // --repro is fully self-contained (the reproducer embeds its
    // module, entry, args and environment) and replaces execution.
    if (!reproFile.empty()) {
        if (!target.empty() || fuzzRequested || shakeRequested ||
            !traceFile.empty() || !replayFile.empty() ||
            !monitorList.empty()) {
            std::cerr << "--repro is self-contained and cannot be "
                         "combined with a module or other modes\n";
            return 1;
        }
        auto rr = fuzz::readReproducer(reproFile);
        if (!rr.ok()) {
            std::cerr << rr.error().toString() << "\n";
            return 1;
        }
        fuzz::ReproVerdict verdict = fuzz::verifyReproducer(rr.value());
        std::cout << reproFile << ": " << verdict.message << "\n";
        return verdict.ok ? 0 : 1;
    }
    if (target.empty()) {
        usage();
        return 1;
    }
    if (serveRequested &&
        (fuzzRequested || !traceFile.empty() || !replayFile.empty() ||
         !emitWasmFile.empty() || !monitorList.empty() ||
         !analyzeKind.empty() || auditLowering ||
         !profileFile.empty() || shakeRequested)) {
        std::cerr << "--serve replaces normal execution and cannot be "
                     "combined with --fuzz/--trace/--replay-check/"
                     "--emit-wasm/--monitors/--analyze/"
                     "--audit-lowering/--profile/--shake\n";
        return 1;
    }
    if (fuzzRequested &&
        (!traceFile.empty() || !replayFile.empty() ||
         !emitWasmFile.empty() || !monitorList.empty() ||
         !analyzeKind.empty() || auditLowering || !profileFile.empty())) {
        std::cerr << "--fuzz replaces normal execution and cannot be "
                     "combined with --trace/--replay-check/--emit-wasm/"
                     "--monitors/--analyze/--audit-lowering/--profile\n";
        return 1;
    }
    // --replay-check and --emit-wasm replace normal execution; flags
    // that only affect a normal run would be silently ignored.
    if (!replayFile.empty() || !emitWasmFile.empty()) {
        if (!replayFile.empty() && !emitWasmFile.empty()) {
            std::cerr << "--replay-check and --emit-wasm conflict\n";
            return 1;
        }
        if (!traceFile.empty() || !monitorList.empty() ||
            metricsRequested || !timelineFile.empty() ||
            !profileFile.empty()) {
            std::cerr << "--trace/--monitors/--metrics/--timeline/"
                         "--profile cannot be combined with "
                         "--replay-check or --emit-wasm\n";
            return 1;
        }
    }
    // The static modes replace normal execution too. --analyze never
    // builds an engine; --audit-lowering builds one (and accepts
    // --monitors so their probe placements can be audited) but does
    // not run it.
    if (!analyzeKind.empty() &&
        (auditLowering || !replayFile.empty() || !emitWasmFile.empty() ||
         !traceFile.empty() || !monitorList.empty() ||
         metricsRequested || !timelineFile.empty() ||
         !profileFile.empty())) {
        std::cerr << "--analyze cannot be combined with other modes\n";
        return 1;
    }
    if (auditLowering &&
        (!replayFile.empty() || !emitWasmFile.empty() ||
         !traceFile.empty())) {
        std::cerr << "--audit-lowering cannot be combined with "
                     "--trace, --replay-check or --emit-wasm\n";
        return 1;
    }

    // The timeline outlives the engine so wizeng can put the module
    // resolution span on it before the engine exists; failures before
    // the run exit without writing the file.
    std::unique_ptr<obs::Timeline> timeline;
    if (!timelineFile.empty()) {
        timeline = std::make_unique<obs::Timeline>();
        timeline->begin("module.load", {{"source", target}});
    }

    // Resolve the module: corpus program, .wat file, or .wasm file.
    // The WAT source text is kept when available: fuzz reproducers
    // embed their module.
    Module module;
    std::string watSource;
    uint32_t defaultN = 1;
    if (target[0] == '@') {
        const BenchProgram* p = findProgram(target.substr(1));
        if (!p) {
            std::cerr << "unknown program " << target << "\n";
            return 1;
        }
        auto r = parseWat(p->wat);
        if (!r.ok()) {
            std::cerr << r.error().toString() << "\n";
            return 1;
        }
        module = r.take();
        watSource = p->wat;
        if (entry.empty()) entry = p->entry;
        defaultN = p->defaultN;
    } else {
        std::ifstream in(target, std::ios::binary);
        if (!in) {
            std::cerr << "cannot open " << target << "\n";
            return 1;
        }
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        if (bytes.size() >= 4 && bytes[0] == 0x00 && bytes[1] == 'a') {
            auto r = decodeModule(bytes);
            if (!r.ok()) {
                std::cerr << "decode: " << r.error().toString() << "\n";
                return 1;
            }
            module = r.take();
        } else {
            std::string source(bytes.begin(), bytes.end());
            auto r = parseWat(source);
            if (!r.ok()) {
                std::cerr << "parse: " << r.error().toString() << "\n";
                return 1;
            }
            module = r.take();
            watSource = std::move(source);
        }
    }

    if (timeline) {
        timeline->end(
            {{"functions", std::to_string(module.functions.size())}});
    }

    if (!shakeModes.empty() &&
        !fuzz::parseShakeModes(shakeModes, &fuzzOpts.shake)) {
        std::cerr << "unknown shake mode in '" << shakeModes << "'\n";
        return 1;
    }

    if (serveRequested) {
        return runServe(std::move(module), config, serveEntry,
                        serveThreads, serveRequests, serveInstrument,
                        std::move(args), defaultN);
    }

    if (fuzzRequested) {
        fuzzOpts.watSource = watSource;
        fuzz::FuzzResult fr = fuzz::runFuzzer(module, config, fuzzOpts);
        fuzz::writeFuzzReport(std::cout, fr);
        if (!fr.ok) return 1;
        if (!fuzzOutDir.empty() && !fr.findings.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(fuzzOutDir, ec);
            for (const fuzz::FuzzFinding& f : fr.findings) {
                if (!f.haveRepro) continue;
                std::string name = f.signature.toString();
                for (char& c : name) {
                    if (!std::isalnum(static_cast<unsigned char>(c)) &&
                        c != '-' && c != '.') {
                        c = '_';
                    }
                }
                std::string path = fuzzOutDir + "/" + name + ".repro";
                if (!fuzz::writeReproducer(path, f.repro)) {
                    std::cerr << "cannot write " << path << "\n";
                    return 1;
                }
                std::cout << "wrote " << path << "\n";
            }
        }
        // Findings exit distinctly so scripts can tell "campaign ran,
        // bugs found" from "campaign failed to run".
        return fr.findings.empty() ? 0 : 3;
    }

    if (!analyzeKind.empty()) return runAnalyze(module, analyzeKind);

    if (!emitWasmFile.empty()) {
        std::vector<uint8_t> bytes = encodeModule(module);
        std::ofstream out(emitWasmFile,
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            std::cerr << "cannot write " << emitWasmFile << "\n";
            return 1;
        }
        std::cout << "wrote " << bytes.size() << " bytes to "
                  << emitWasmFile << "\n";
        return 0;
    }

    if (!replayFile.empty()) {
        std::ifstream in(replayFile, std::ios::binary);
        if (!in) {
            std::cerr << "cannot open " << replayFile << "\n";
            return 1;
        }
        std::vector<uint8_t> golden(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        // A shake recording replays only under the same recorded
        // environment, so --shake/--shake-seed apply here too.
        ReplayEnv env;
        if (shakeRequested) {
            env = fuzz::makeShakeEnv(module, fuzzOpts.shake);
        }
        ReplayOutcome o =
            replayVerify(golden, std::move(module), config, env);
        std::cout << o.message << "\n";
        return o.ok ? 0 : 1;
    }

    Engine engine(config);
    engine.setTimeline(timeline.get());
    auto lr = engine.loadModule(std::move(module));
    if (!lr.ok()) {
        std::cerr << "load: " << lr.error().toString() << "\n";
        return 1;
    }

    std::vector<std::unique_ptr<Monitor>> monitors;
    for (const auto& name : monitorList) {
        if (name == "debugger") {
            useDebugger = true;
            continue;
        }
        auto m = createMonitor(name, std::cout);
        if (!m) {
            std::cerr << "unknown monitor " << name << "\n";
            return 1;
        }
        engine.attachMonitor(m.get());
        monitors.push_back(std::move(m));
    }
    std::unique_ptr<DebuggerMonitor> debugger;
    if (useDebugger) {
        debugger = std::make_unique<DebuggerMonitor>(std::cin, std::cout);
        engine.attachMonitor(debugger.get());
    }
    std::unique_ptr<TraceRecorder> recorder;
    if (!traceFile.empty()) {
        recorder = std::make_unique<TraceRecorder>();
        engine.attachMonitor(recorder.get());
    }
    std::unique_ptr<obs::SamplingProfiler> profiler;
    if (!profileFile.empty()) {
        profiler = std::make_unique<obs::SamplingProfiler>(profOpts);
        engine.attachMonitor(profiler.get());
    }
    std::unique_ptr<PairProfileMonitor> pairProfiler;
    if (!pairProfileFile.empty()) {
        pairProfiler = std::make_unique<PairProfileMonitor>();
        engine.attachMonitor(pairProfiler.get());
    }

    // A shaken normal run: same environment hooks record/replay use,
    // applied around instantiation (imports before, memory plan after).
    ReplayEnv shakeEnv;
    if (shakeRequested) {
        shakeEnv = fuzz::makeShakeEnv(engine.module(), fuzzOpts.shake);
        shakeEnv.preInstantiate(engine);
    }
    auto ir = engine.instantiate();
    if (!ir.ok()) {
        std::cerr << "instantiate: " << ir.error().toString() << "\n";
        return 1;
    }
    if (shakeRequested) shakeEnv.postInstantiate(engine);

    if (auditLowering) return runAudit(engine, auditSelftest);

    // Pick the entry point.
    if (entry.empty()) {
        entry = engine.module().findFuncExport("run") >= 0 ? "run"
                                                           : "main";
    }
    int32_t idx = engine.module().findFuncExport(entry);
    if (idx < 0) {
        std::cerr << "no exported function '" << entry << "'\n";
        return 1;
    }
    // Default argument for corpus-style run(n) entry points.
    const FuncType& sig = engine.module().funcType(idx);
    while (args.size() < sig.params.size()) {
        args.push_back(Value::makeI32(defaultN));
    }

    if (recorder) recorder->setInvocation(entry, args);
    auto result = engine.callExport(entry, args);
    if (recorder && !result.ok() &&
        engine.lastTrap() == TrapReason::None) {
        // Invocation error, not a program outcome: nothing to record.
        recorder = nullptr;
    }
    if (recorder) {
        // A trapping run is still a complete trace (it ends in a Trap
        // event), so the file is written on both paths.
        recorder->finish(
            result.ok() ? TrapReason::None : engine.lastTrap(),
            result.ok() ? result.value() : std::vector<Value>{});
        if (!recorder->writeFile(traceFile)) {
            std::cerr << "cannot write trace to " << traceFile << "\n";
            return 1;
        }
        std::cout << "trace: " << recorder->eventCount()
                  << " event(s), " << recorder->bytes().size()
                  << " byte(s) -> " << traceFile << "\n";
    }
    // Observability outputs are written on both outcomes: a trapping
    // run still has a complete timeline, profile and metrics story.
    if (pairProfiler) {
        std::ofstream out(pairProfileFile, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write pair profile to "
                      << pairProfileFile << "\n";
            return 1;
        }
        pairProfiler->profile().writeReport(out);
        std::cout << "pairs: " << pairProfiler->profile().instructions
                  << " instruction(s), "
                  << pairProfiler->profile().pairs.size()
                  << " distinct pair(s) -> " << pairProfileFile << "\n";
    }
    if (profiler) {
        std::ofstream out(profileFile, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write profile to " << profileFile
                      << "\n";
            return 1;
        }
        profiler->writeFolded(out);
        std::cout << "profile: " << profiler->sampleCount()
                  << " sample(s) over " << profiler->fireCount()
                  << " probe fire(s) -> " << profileFile << "\n";
    }
    if (timeline) {
        std::ofstream out(timelineFile, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write timeline to " << timelineFile
                      << "\n";
            return 1;
        }
        timeline->writeJson(out);
        std::cout << "timeline: " << timeline->events().size()
                  << " event(s) -> " << timelineFile << "\n";
    }
    if (!result.ok()) {
        if (metricsRequested) {
            engine.metrics().write(std::cout, metricsFormat);
        }
        std::cerr << "error: " << result.error().toString() << "\n";
        return 42;
    }
    for (const Value& v : result.value()) {
        std::cout << v.toString() << "\n";
    }
    for (const auto& m : monitors) m->report(std::cout);
    if (profiler) profiler->report(std::cout);
    if (metricsRequested) {
        engine.metrics().write(std::cout, metricsFormat);
    }
    return 0;
}
